"""Wall-clock deadline guard (``--deadline``, scheduler-enforced)."""

import pytest

from repro.apps.registry import get_app
from repro.errors import DeadlineExceeded


def test_generous_deadline_is_byte_identical_to_none():
    spec = get_app("queue_racy")
    plain = spec.run(nprocs=3)
    guarded = spec.run(nprocs=3, deadline_seconds=120.0)
    assert sorted(map(str, guarded.races)) == sorted(map(str, plain.races))
    assert guarded.runtime_cycles == plain.runtime_cycles
    assert guarded.detector_stats == plain.detector_stats


def test_tiny_deadline_aborts_cleanly():
    with pytest.raises(DeadlineExceeded) as exc_info:
        get_app("water").run(nprocs=4, deadline_seconds=1e-9)
    err = exc_info.value
    assert err.deadline_seconds == 1e-9
    assert err.elapsed_seconds > 0
    assert "aborted" in str(err)


def test_cli_maps_deadline_to_exit_code_4(capsys):
    from repro.cli import main
    rc = main(["run", "water", "--procs", "4", "--deadline", "1e-9"])
    assert rc == 4
    assert "deadline exceeded" in capsys.readouterr().err


def test_cli_rejects_nonpositive_deadline(capsys):
    from repro.cli import main
    rc = main(["run", "fft", "--procs", "2", "--deadline", "0"])
    assert rc == 2
    assert "--deadline" in capsys.readouterr().err
