"""Crash plans, schedules and the deterministic injector."""

import pytest

from repro.sim.crash import (CrashInjector, CrashPlan, CrashRecord,
                             CrashStats, EVENT_KINDS, parse_crash_at,
                             plan_from_options)


# ---------------------------------------------------------------------- #
# parse_crash_at
# ---------------------------------------------------------------------- #
def test_parse_crash_at_basic():
    assert parse_crash_at(["2:1", "1:0"]) == ((1, 0), (2, 1))


def test_parse_crash_at_dedupes():
    assert parse_crash_at(["3:2", "3:2"]) == ((3, 2),)


@pytest.mark.parametrize("spec", ["nope", "1", "1:", ":2", "a:b", "-1:2",
                                  "1:-2"])
def test_parse_crash_at_rejects_malformed(spec):
    with pytest.raises(ValueError):
        parse_crash_at([spec])


# ---------------------------------------------------------------------- #
# CrashPlan
# ---------------------------------------------------------------------- #
def test_plan_rate_validation():
    with pytest.raises(ValueError):
        CrashPlan(rate=1.0)
    with pytest.raises(ValueError):
        CrashPlan(rate=-0.1)


def test_plan_enabled():
    assert not CrashPlan().enabled
    assert CrashPlan(rate=0.5).enabled
    assert CrashPlan(at=((1, 0),)).enabled


def test_plan_from_options_none_when_inert():
    assert plan_from_options(0.0, 123, ()) is None
    plan = plan_from_options(0.25, 9, ((2, 1),))
    assert plan.rate == 0.25 and plan.seed == 9 and plan.at == ((2, 1),)


# ---------------------------------------------------------------------- #
# CrashInjector determinism
# ---------------------------------------------------------------------- #
def _schedule(seed, rate, pids=4, events=200):
    """The full decision stream of one plan, as a set of fatal events."""
    inj = CrashInjector(CrashPlan(rate=rate, seed=seed))
    fatal = set()
    for kind in EVENT_KINDS:
        for pid in range(pids):
            for n in range(events):
                if inj.decide(pid, kind):
                    fatal.add((pid, kind, n))
    return fatal


def test_injector_same_seed_same_schedule():
    assert _schedule(7, 0.02) == _schedule(7, 0.02)


def test_injector_different_seeds_differ():
    # Not guaranteed in principle, overwhelmingly likely at 2400 events.
    assert _schedule(7, 0.02) != _schedule(8, 0.02)


def test_injector_rate_roughly_respected():
    fatal = _schedule(3, 0.05, pids=8, events=500)
    total = 3 * 8 * 500
    assert 0.02 < len(fatal) / total < 0.10


def test_injector_per_pid_streams_independent():
    """P2's fate must not depend on how many events other pids saw —
    the property that makes crash schedules interleaving-independent."""
    a = CrashInjector(CrashPlan(rate=0.05, seed=1))
    b = CrashInjector(CrashPlan(rate=0.05, seed=1))
    # a: interleave pids; b: run P2 alone.
    stream_a = []
    for n in range(300):
        for pid in (0, 1, 2, 3):
            fate = a.decide(pid, "access")
            if pid == 2:
                stream_a.append(fate)
    stream_b = [b.decide(2, "access") for _ in range(300)]
    assert stream_a == stream_b


def test_injector_zero_rate_never_fires_but_counts():
    inj = CrashInjector(CrashPlan(rate=0.0, seed=0, at=((1, 2),)))
    assert not any(inj.decide(1, "access") for _ in range(100))
    assert inj.scheduled_at(1, 2)
    assert not inj.scheduled_at(1, 1)
    assert not inj.scheduled_at(0, 2)


# ---------------------------------------------------------------------- #
# CrashStats
# ---------------------------------------------------------------------- #
def test_crash_stats_counters():
    st = CrashStats()
    st.record_crash("access")
    st.record_crash("access")
    st.record_crash("barrier")
    st.recoveries_from_checkpoint = 2
    st.recoveries_without_checkpoint = 1
    assert st.crashes == 3
    assert st.by_kind == {"access": 2, "barrier": 1}
    assert st.recoveries == 3
    assert st.summary()["crashes"] == 3


def test_crash_record_fields():
    rec = CrashRecord(kind="send", time=123.0, epoch=4)
    assert rec.kind == "send" and rec.time == 123.0 and rec.epoch == 4
