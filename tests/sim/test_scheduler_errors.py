"""Direct tests of Scheduler.run's error paths (including crash-induced
variants): ProcessFailure cause preservation, deadlock reporting, and the
fail-stop CRASHED state."""

import pytest

from repro.errors import (DeadlockError, NodeCrashed, ProcessFailure,
                          ReproError)
from repro.sim.scheduler import ProcState, Scheduler


# ---------------------------------------------------------------------- #
# ProcessFailure
# ---------------------------------------------------------------------- #
def test_process_failure_preserves_cause_and_pid():
    sched = Scheduler()

    def ok(pid):
        return pid

    def boom(_pid):
        raise RuntimeError("kaboom")

    sched.spawn(ok, 0)
    sched.spawn(boom, 1)
    with pytest.raises(ProcessFailure) as exc_info:
        sched.run()
    err = exc_info.value
    assert err.pid == 1
    assert isinstance(err.original, RuntimeError)
    assert isinstance(err.__cause__, RuntimeError)
    assert "kaboom" in str(err.__cause__)
    assert isinstance(err, ReproError)  # catchable at the package root


# ---------------------------------------------------------------------- #
# DeadlockError
# ---------------------------------------------------------------------- #
def test_deadlock_reports_blocked_reasons():
    sched = Scheduler()

    def stuck(pid, reason):
        sched.block(pid, reason)

    sched.spawn(stuck, 0, "lock 5")
    sched.spawn(stuck, 1, "barrier gen 0")
    with pytest.raises(DeadlockError) as exc_info:
        sched.run()
    err = exc_info.value
    assert err.blocked == {0: "lock 5", 1: "barrier gen 0"}
    assert err.crashed == ()
    assert "lock 5" in str(err)


# ---------------------------------------------------------------------- #
# Fail-stop crashes
# ---------------------------------------------------------------------- #
def test_node_crashed_parks_process_without_failing_run():
    """A NodeCrashed unwind is not a program bug: the process is parked in
    CRASHED and the survivors run to completion."""
    sched = Scheduler()

    def dies(pid):
        raise NodeCrashed(pid, "access", 42.0)

    def survives(pid):
        return pid * 10

    sched.spawn(dies, 0)
    sched.spawn(survives, 1)
    sched.run()  # must not raise
    assert sched.processes[0].state is ProcState.CRASHED
    assert sched.processes[0].error is None
    assert sched.processes[1].state is ProcState.DONE
    assert sched.crashed_pids() == [0]
    assert sched.results()[1] == 10


def test_crash_induced_deadlock_names_the_dead():
    """Survivors blocking on a fail-stop node end in a DeadlockError that
    names the crashed pid — the diagnosis the recovery layer replaces."""
    sched = Scheduler()

    def dies(pid):
        raise NodeCrashed(pid, "barrier", 100.0)

    def waits(pid):
        sched.block(pid, "barrier gen 1")

    sched.spawn(waits, 0)
    sched.spawn(dies, 1)
    sched.spawn(waits, 2)
    with pytest.raises(DeadlockError) as exc_info:
        sched.run()
    err = exc_info.value
    assert err.crashed == (1,)
    assert set(err.blocked) == {0, 2}
    assert "unrecovered crash" in str(err) and "P1" in str(err)


def test_all_crashed_is_not_a_deadlock():
    sched = Scheduler()

    def dies(pid):
        raise NodeCrashed(pid, "send", 1.0)

    sched.spawn(dies, 0)
    sched.spawn(dies, 1)
    sched.run()  # nothing blocked: completes, run degraded but not wedged
    assert sched.crashed_pids() == [0, 1]


def test_node_crashed_message_and_fields():
    exc = NodeCrashed(3, "barrier", 1234.5)
    assert exc.pid == 3 and exc.kind == "barrier"
    assert exc.at_cycles == 1234.5
    assert "P3" in str(exc) and "barrier" in str(exc)
    assert isinstance(exc, ReproError)
