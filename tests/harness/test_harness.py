"""Harness: table/figure computation and rendering (small configs)."""

import pytest

from repro.harness.context import ExperimentContext
from repro.harness.experiments import (render_experiments_md, render_findings,
                                       render_report, run_all_experiments)
from repro.harness.figure3 import compute_figure3, render_figure3
from repro.harness.figure4 import Figure4Row, compute_figure4, render_figure4
from repro.harness.format import markdown_table, pct, render_table
from repro.harness.table1 import compute_table1, render_table1
from repro.harness.table2 import compute_table2, render_table2
from repro.harness.table3 import compute_table3, render_table3


@pytest.fixture(scope="module")
def results():
    """One small full-experiment run shared by every test here."""
    ctx = ExperimentContext()
    return run_all_experiments(ctx, sweep=(2, 4))


def test_table1_rows(results):
    rows = {r.app: r for r in results.table1}
    assert set(rows) == {"fft", "sor", "tsp", "water"}
    for r in rows.values():
        assert r.slowdown > 1.0
        assert r.memory_kbytes > 0
    assert rows["fft"].intervals_per_barrier == 2.0
    assert rows["sor"].intervals_per_barrier == 2.0
    assert rows["tsp"].intervals_per_barrier == \
        max(r.intervals_per_barrier for r in rows.values())


def test_table2_rows(results):
    for r in results.table2:
        assert r.eliminated_fraction > 0.99
        assert r.library > r.instrumented


def test_table3_rows(results):
    rows = {r.app: r for r in results.table3}
    assert rows["sor"].intervals_used == 0.0
    assert rows["tsp"].intervals_used == \
        max(r.intervals_used for r in rows.values())
    for r in rows.values():
        assert 0 <= r.bitmaps_used <= 1
        assert r.shared_per_sec >= 0 and r.private_per_sec >= 0


def test_figure3_rows(results):
    for r in results.figure3:
        assert r.total_overhead > 0
        assert 0 <= r.instrumentation_share <= 1
        # Interval comparison is never the dominant overhead (paper: at
        # most 3rd/4th largest).
        assert r.category_rank("intervals") >= 2
    # Instrumentation dominates on average (paper: ~68%).
    avg = sum(r.instrumentation_share for r in results.figure3) / 4
    assert avg > 0.5


def test_figure4_rows(results):
    for r in results.figure4:
        assert set(r.slowdowns) == {2, 4}
        assert all(s > 1 for s in r.slowdowns.values())


def test_findings(results):
    text = render_findings(results)
    assert "TSP" in text and "tsp_bound" in text
    assert "water_poteng" in text
    assert "FFT    no data races (expected)" in text


def test_renderers_produce_text(results):
    for chunk in (render_table1(results.table1),
                  render_table2(results.table2),
                  render_table3(results.table3),
                  render_figure3(results.figure3),
                  render_figure4(results.figure4),
                  render_report(results)):
        assert isinstance(chunk, str) and len(chunk) > 50


def test_experiments_md(results):
    md = render_experiments_md(results)
    assert "## Table 1" in md and "## Figure 4" in md
    assert "tsp_bound" in md and "water_poteng" in md


def test_format_helpers():
    assert pct(0.133) == "13%"
    table = render_table("T", ["a", "bb"], [[1, 2.5], ["x", 10000.0]])
    assert "T" in table and "10,000" in table
    md = markdown_table(["h"], [[1]])
    assert md.startswith("| h |")


def test_figure4_decreasing_check():
    row = Figure4Row("x", {2: 3.0, 4: 2.0, 8: 1.5})
    assert row.decreasing_overall()
    row2 = Figure4Row("x", {2: 1.2, 8: 2.0})
    assert not row2.decreasing_overall()
