"""JSON/CSV export of experiment artifacts."""

import csv
import json

import pytest

from repro.harness.context import ExperimentContext
from repro.harness.experiments import run_all_experiments
from repro.harness.export import export_csv, export_json, results_to_dict


@pytest.fixture(scope="module")
def results():
    ctx = ExperimentContext(apps=("sor", "tsp"))
    return run_all_experiments(ctx, sweep=(2,))


def test_results_to_dict_structure(results):
    data = results_to_dict(results)
    assert set(data) == {"table1", "table2", "table3", "figure3",
                         "figure4", "races", "avg_slowdown"}
    assert {row["app"] for row in data["table1"]} == {"sor", "tsp"}
    # table2 always covers the four binaries (static artifact).
    assert len(data["table2"]) == 4
    assert data["races"]["tsp"], "TSP races present in export"
    assert all(r["symbol"].startswith("tsp_bound")
               for r in data["races"]["tsp"])


def test_export_json_roundtrip(results, tmp_path):
    path = tmp_path / "results.json"
    export_json(results, str(path))
    loaded = json.loads(path.read_text())
    assert loaded["avg_slowdown"] == pytest.approx(results.avg_slowdown)
    assert loaded["figure4"][0]["slowdowns"]["2"] > 1


def test_export_csv_files(results, tmp_path):
    paths = export_csv(results, str(tmp_path / "csv"))
    assert len(paths) == 5
    with open([p for p in paths if p.endswith("table1.csv")][0]) as f:
        rows = list(csv.DictReader(f))
    assert {r["app"] for r in rows} == {"sor", "tsp"}
    assert all(float(r["slowdown"]) > 1 for r in rows)
    with open([p for p in paths if p.endswith("figure3.csv")][0]) as f:
        rows = list(csv.DictReader(f))
    assert "proc_call" in rows[0]
