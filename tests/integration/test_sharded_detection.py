"""Sharded distributed epoch detection: cross-engine equivalence.

The guarantee under test (``--sharded-detection``): partitioning the
epoch's pair search across the live processes and tree-reducing the
candidate reports back to the coordinator produces **byte-identical**
RaceReports — same order, same dedup keys, same verdicts — as the
centralized engine, on every registered application, under lossy
networks, node crashes, and coordinator failover; and a shard owner
dying mid-phase degrades to coordinator-local detection for that epoch
*soundly*, never silently dropping a race.  The distribution protocol's
traffic is priced under ``CostCategory.SHARDED_DETECT``, outside the
overhead breakdown, so sharding-off artifacts stay byte-identical.
"""

import pytest

from repro.apps.registry import APPLICATIONS, EXTRAS, get_app
from repro.dsm.config import DsmConfig
from repro.sim.costmodel import OVERHEAD_CATEGORIES, CostCategory

ALL_APPS = sorted(APPLICATIONS) + sorted(EXTRAS)


def paired_runs(app: str, nprocs: int = 8, **overrides):
    spec = get_app(app)
    if app == "queue_racy":
        nprocs = 3
    sharded = spec.run(nprocs=nprocs, sharded_detection=True, **overrides)
    central = spec.run(nprocs=nprocs, **overrides)
    return sharded, central


def assert_identical_reports(sharded, central):
    """The full byte-identity contract: report strings in order, dedup
    keys, verdicts, unverifiable entries, and the whole DetectorStats
    (including per-epoch history).  Runtimes are deliberately *not*
    compared — moving the comparison work to the owners' clocks is the
    point of sharding."""
    assert [str(r) for r in sharded.races] == [str(r) for r in central.races]
    assert ([r.key() for r in sharded.races]
            == [r.key() for r in central.races])
    assert ([str(e) for e in sharded.unverifiable]
            == [str(e) for e in central.unverifiable])
    assert sharded.detector_stats == central.detector_stats


# ---------------------------------------------------------------------- #
# Fault-free equivalence across every registered application.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("app", ALL_APPS)
def test_sharded_matches_centralized(app):
    sharded, central = paired_runs(app)
    assert_identical_reports(sharded, central)
    sh = sharded.sharding_stats
    assert sh.epochs_sharded > 0
    assert sharded.config.sharded_detection


@pytest.mark.parametrize("app", ["tsp", "water"])
def test_sharded_matches_centralized_16_procs(app):
    """The scale-out shape sharding exists for: more processes, more
    cross-process pair blocks per epoch."""
    sharded, central = paired_runs(app, nprocs=16)
    assert_identical_reports(sharded, central)
    assert sharded.sharding_stats.shards_dispatched > 0


def test_sharded_matches_reference_engine():
    """Transitivity check against the paper's literal O(i²p²) engine:
    sharded + fast path ≡ centralized reference."""
    spec = get_app("tsp")
    sharded = spec.run(nprocs=8, sharded_detection=True,
                       detector_fast_path=True)
    ref = spec.run(nprocs=8, detector_fast_path=False)
    assert_identical_reports(sharded, ref)


def test_sharded_matches_centralized_consolidation():
    sharded, central = paired_runs("tsp", consolidation_interval=6)
    assert_identical_reports(sharded, central)


def test_sharded_matches_centralized_first_races_only():
    sharded, central = paired_runs("water", first_races_only=True)
    assert_identical_reports(sharded, central)


def test_sharded_matches_centralized_multi_writer():
    sharded, central = paired_runs("water", protocol="mw",
                                   diff_write_detection=True)
    assert_identical_reports(sharded, central)


# ---------------------------------------------------------------------- #
# Shard-count cap.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("shards", [2, 3])
def test_detection_shards_cap_preserves_reports(shards):
    spec = get_app("tsp")
    sharded = spec.run(nprocs=8, sharded_detection=True,
                       detection_shards=shards)
    central = spec.run(nprocs=8)
    assert_identical_reports(sharded, central)
    assert sharded.sharding_stats.epochs_sharded > 0


def test_detection_shards_one_degenerates_to_centralized():
    """A single owner is the coordinator itself — nothing to distribute,
    every epoch runs the centralized pass."""
    spec = get_app("tsp")
    sharded = spec.run(nprocs=8, sharded_detection=True,
                       detection_shards=1)
    central = spec.run(nprocs=8)
    assert_identical_reports(sharded, central)
    sh = sharded.sharding_stats
    assert sh.epochs_sharded == 0
    assert sh.epochs_centralized > 0
    assert sh.scatter_messages == sh.reduce_messages == 0


def test_config_rejects_negative_shards():
    with pytest.raises(ValueError, match="detection_shards"):
        DsmConfig(nprocs=4, sharded_detection=True, detection_shards=-1)


def test_config_rejects_shards_without_sharding():
    with pytest.raises(ValueError, match="--sharded-detection"):
        DsmConfig(nprocs=4, detection_shards=2)


# ---------------------------------------------------------------------- #
# Faults: lossy network, node crashes, coordinator failover.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("loss,dup", [(0.05, 0.0), (0.02, 0.05)])
def test_sharded_matches_centralized_lossy(loss, dup):
    """Sharding traffic rides the same reliable channel as everything
    else; drops and duplicates must not perturb the verdicts."""
    sharded, central = paired_runs("tsp", loss_rate=loss,
                                   duplicate_rate=dup, fault_seed=2)
    assert_identical_reports(sharded, central)


@pytest.mark.parametrize("crash_seed", [7, 11])
def test_sharded_matches_centralized_crashy_checkpointed(crash_seed):
    """With checkpoints, recovery regenerates detection metadata exactly,
    so even runs that crash (including possible detect-phase owner
    crashes) report byte-identically to the centralized engine under the
    same schedule."""
    sharded, central = paired_runs("tsp", nprocs=4, crash_rate=0.02,
                                   crash_seed=crash_seed, checkpoint=True)
    assert_identical_reports(sharded, central)


def test_shard_owner_crash_falls_back_soundly():
    """Hammer the detect-phase crash points until an owner dies mid-shard:
    the epoch must fall back to coordinator-local detection, and with
    checkpoints on the reports still match the centralized run."""
    fallbacks = 0
    for crash_seed in range(1, 30):
        sharded, central = paired_runs(
            "tsp", nprocs=4, crash_rate=0.05, crash_seed=crash_seed,
            checkpoint=True)
        assert_identical_reports(sharded, central)
        fallbacks += sharded.sharding_stats.fallbacks_owner_crash
        if fallbacks:
            break
    assert fallbacks > 0, "no detect-phase owner crash ever fired"


def test_shard_owner_crash_without_checkpoints_is_sound():
    """Without checkpoints a detect-phase owner crash loses that node's
    epoch metadata; the fallback pass degrades those checks to explicit
    unverifiable entries — a race may be missed only if one of its sides
    is covered by an unverifiable pair, never silently."""
    spec = get_app("tsp")
    for crash_seed in range(1, 30):
        sharded = spec.run(nprocs=4, sharded_detection=True,
                           crash_rate=0.05, crash_seed=crash_seed)
        if sharded.sharding_stats.fallbacks_owner_crash == 0:
            continue
        clean = spec.run(nprocs=4)
        found = {r.key() for r in sharded.races}
        sides = {(e.a.pid, e.a.index) for e in sharded.unverifiable} \
            | {(e.b.pid, e.b.index) for e in sharded.unverifiable}
        for race in clean.races:
            if race.key() in found:
                continue
            race_sides = {(race.a.pid, race.a.index),
                          (race.b.pid, race.b.index)}
            assert race_sides & sides, (
                f"race silently dropped with no unverifiable trace: {race}")
        return
    pytest.fail("no detect-phase owner crash ever fired")


def test_sharded_matches_centralized_under_failover():
    """Coordinator dies at generation 1: the elected successor keeps
    sharding the remaining epochs and the reports stay byte-identical."""
    sharded, central = paired_runs("tsp", nprocs=4, crash_at=((0, 1),),
                                   master_failover=True, checkpoint=True)
    assert_identical_reports(sharded, central)
    assert sharded.failover_stats.elections_held == 1
    assert sharded.sharding_stats.epochs_sharded > 0


# ---------------------------------------------------------------------- #
# Determinism and accounting.
# ---------------------------------------------------------------------- #
def test_sharded_run_is_deterministic():
    spec = get_app("tsp")
    a = spec.run(nprocs=8, sharded_detection=True)
    b = spec.run(nprocs=8, sharded_detection=True)
    assert [str(r) for r in a.races] == [str(r) for r in b.races]
    assert a.runtime_cycles == b.runtime_cycles
    assert a.sharding_stats.summary() == b.sharding_stats.summary()
    for la, lb in zip(a.ledgers, b.ledgers):
        assert la.totals == lb.totals


def test_sharding_traffic_priced_under_its_own_category():
    sharded, central = paired_runs("tsp")
    agg = sharded.aggregate_ledger().totals
    assert agg[CostCategory.SHARDED_DETECT] > 0
    # ... and never with sharding off:
    assert central.aggregate_ledger().totals[
        CostCategory.SHARDED_DETECT] == 0.0
    assert CostCategory.SHARDED_DETECT not in OVERHEAD_CATEGORIES


def test_sharding_off_stats_are_zero():
    res = get_app("tsp").run(nprocs=8)
    assert not res.config.sharded_detection
    assert all(v == 0 for v in res.sharding_stats.summary().values())


def test_sharding_message_tags_ride_the_network(monkeypatch):
    """The scatter / meta-fetch / bitmap-fetch / reduce exchanges are real
    transport messages with their own tags."""
    from repro.dsm.cvm import CVM

    spec = get_app("tsp")
    cfg = spec.config(nprocs=8, sharded_detection=True)
    system = CVM(cfg)
    tags = []
    orig = system.net.send

    def spy(tag, src, dst, payload, nbytes, clock, **kw):
        tags.append(tag)
        return orig(tag, src, dst, payload, nbytes, clock, **kw)

    monkeypatch.setattr(system.net, "send", spy)
    system.run(spec.func, spec.default_params)
    seen = set(tags)
    assert {"detect_shard", "shard_bitmap_request", "shard_bitmap_reply",
            "shard_reduce"} <= seen
