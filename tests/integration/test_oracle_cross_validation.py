"""Cross-validate the online detector against the oracles on the real
applications (small inputs, traced runs)."""

import pytest

from tests.helpers import online_race_keys

from repro.apps.fft import FftParams
from repro.apps.registry import APPLICATIONS
from repro.apps.sor import SorParams
from repro.apps.tsp import TspParams
from repro.apps.water import WaterParams
from repro.core.baseline import HappensBeforeDetector, PostMortemAnalyzer
from repro.dsm.cvm import CVM

SMALL_PARAMS = {
    "sor": SorParams(rows=8, cols=64, iterations=2),
    "fft": FftParams(n=8, iterations=1),
    "tsp": TspParams(ncities=7),
    "water": WaterParams(nmol=8, steps=1),
}


@pytest.mark.parametrize("app", ["sor", "fft", "tsp", "water"])
def test_online_matches_oracles(app):
    spec = APPLICATIONS[app]
    cfg = spec.config(nprocs=4, track_access_trace=True)
    system = CVM(cfg)
    result = system.run(spec.func, SMALL_PARAMS[app])

    online = online_race_keys(result)
    hb = HappensBeforeDetector(system.store.vc_log).races(result.access_trace)
    pm = PostMortemAnalyzer(system.store.vc_log).races(result.access_trace)

    assert online == hb, (
        f"{app}: online detector disagrees with happens-before oracle\n"
        f"missed: {sorted(hb - online)[:4]}\nphantom: {sorted(online - hb)[:4]}")
    assert pm == hb


def test_online_saves_the_postmortem_log():
    """The paper's efficiency claim vs Adve et al.: the online system
    writes no trace log at all; the post-mortem system's log grows with
    every shared access."""
    spec = APPLICATIONS["water"]
    cfg = spec.config(nprocs=4, track_access_trace=True)
    system = CVM(cfg)
    result = system.run(spec.func, SMALL_PARAMS["water"])
    log_bytes = PostMortemAnalyzer.log_bytes(result.access_trace)
    # The log dwarfs what the online system adds to the wire.
    online_overhead_bytes = (result.traffic.read_notice_bytes
                             + result.traffic.bitmap_round_bytes)
    assert log_bytes > online_overhead_bytes
