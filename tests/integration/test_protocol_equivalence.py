"""Cross-protocol properties on randomly generated programs.

Two invariants tie the substrate together:

1. For *data-race-free* random programs, the single-writer and
   multi-writer protocols produce identical results (LRC's fundamental
   guarantee: properly-labeled programs cannot observe the protocol).
2. The detector's race set is protocol-independent: races live in the
   ordering metadata (intervals, vector clocks) and the access bitmaps,
   none of which depend on how pages move.
"""

from __future__ import annotations

import random

import pytest

from tests.helpers import online_race_keys, small_config

from repro.dsm.cvm import CVM

NWORDS = 32
NLOCKS = 2


def synchronized_program(seed: int, nprocs: int, phases: int):
    """Random program whose every access is lock-protected or confined to
    a per-process slab: data-race-free by construction."""
    rng = random.Random(seed)
    prog = {pid: [] for pid in range(nprocs)}
    for _ in range(phases):
        for pid in range(nprocs):
            ops = []
            for _ in range(rng.randrange(6)):
                if rng.random() < 0.6:
                    lid = rng.randrange(NLOCKS)
                    addr = rng.randrange(NWORDS)
                    ops.append(("locked_rmw", lid, addr, rng.randrange(5)))
                else:
                    off = rng.randrange(4)
                    ops.append(("own_slab", off, rng.randrange(100)))
            prog[pid].append(ops)
    return prog


def racy_program(seed: int, nprocs: int, phases: int):
    """Random program with unsynchronized accesses mixed in."""
    rng = random.Random(seed)
    prog = {pid: [] for pid in range(nprocs)}
    for _ in range(phases):
        for pid in range(nprocs):
            ops = []
            for _ in range(rng.randrange(6)):
                roll = rng.random()
                addr = rng.randrange(NWORDS)
                if roll < 0.3:
                    ops.append(("store", addr, rng.randrange(100)))
                elif roll < 0.6:
                    ops.append(("load", addr))
                else:
                    ops.append(("locked_rmw", rng.randrange(NLOCKS), addr,
                                rng.randrange(5)))
            prog[pid].append(ops)
    return prog


def run_program(prog, nprocs, protocol, seed=0):
    def app(env):
        arena = env.malloc(NWORDS, name="arena")
        slabs = env.malloc(nprocs * 16, name="slabs", page_aligned=True)
        env.barrier()
        for phase in prog[env.pid]:
            for op in phase:
                if op[0] == "locked_rmw":
                    _k, lid, addr, inc = op
                    with env.locked(lid):
                        env.store(arena + addr,
                                  env.load(arena + addr) + inc)
                elif op[0] == "own_slab":
                    _k, off, val = op
                    env.store(slabs + env.pid * 16 + off, val)
                    env.load(slabs + env.pid * 16 + off)
                elif op[0] == "store":
                    env.store(arena + op[1], op[2])
                else:
                    env.load(arena + op[1])
            env.barrier()
        # Read back the arena after a barrier: ordered, deterministic.
        return tuple(env.load_range(arena, NWORDS))

    cfg = small_config(nprocs=nprocs, protocol=protocol, seed=seed,
                       policy="random")
    return CVM(cfg).run(app)


@pytest.mark.parametrize("seed", range(8))
def test_race_free_programs_protocol_agnostic(seed):
    prog = synchronized_program(seed, nprocs=3, phases=3)
    sw = run_program(prog, 3, "sw", seed)
    mw = run_program(prog, 3, "mw", seed)
    assert sw.races == [] and mw.races == []
    assert sw.results == mw.results


@pytest.mark.parametrize("seed", range(8))
def test_detector_output_protocol_independent(seed):
    prog = racy_program(seed + 500, nprocs=3, phases=2)
    sw = run_program(prog, 3, "sw", seed)
    mw = run_program(prog, 3, "mw", seed)
    assert online_race_keys(sw) == online_race_keys(mw)


@pytest.mark.parametrize("seed", range(4))
def test_racy_final_state_still_converges_after_barrier(seed):
    """Even with races, the final barrier-ordered readback agrees across
    processes (coherence, not sequential consistency, is preserved)."""
    prog = racy_program(seed + 900, nprocs=4, phases=2)
    for protocol in ("sw", "mw"):
        res = run_program(prog, 4, protocol, seed)
        assert all(r == res.results[0] for r in res.results), protocol
