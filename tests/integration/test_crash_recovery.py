"""Crash-tolerance integration: chaos seed sweeps, recovery equivalence,
and sound detector degradation under lost metadata.

The headline guarantees (ISSUE acceptance criteria):

* checkpoint-recovered runs produce race reports *byte-identical* to the
  crash-free run, across a sweep of crash seeds;
* without checkpoints, every concurrent overlapping pair touching a
  crash-lost interval surfaces as an explicit ``unverifiable`` entry —
  checks are degraded, never silently dropped;
* crashes disabled (the default) leaves every artifact byte-identical:
  zero RECOVERY cycles, zero crash counters.
"""

import pytest

from repro.apps.registry import get_app
from repro.errors import DeadlockError
from repro.sim.costmodel import CostCategory

CHAOS_SEEDS = [1, 2, 3, 4, 5]


def _report_lines(result):
    """The exact artifact ``repro run --report`` writes: sorted formatted
    race lines (unverifiable entries deliberately excluded)."""
    return sorted(str(r) for r in result.races)


@pytest.fixture(scope="module")
def tsp_free():
    return get_app("tsp").run(nprocs=4)


@pytest.fixture(scope="module")
def water_free():
    return get_app("water").run(nprocs=4)


# ---------------------------------------------------------------------- #
# Checkpoint recovery: byte-identical reports across a chaos sweep.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_checkpoint_recovery_reports_byte_identical(seed, tsp_free):
    res = get_app("tsp").run(nprocs=4, crash_rate=0.02, crash_seed=seed,
                             checkpoint=True)
    assert _report_lines(res) == _report_lines(tsp_free)
    cs = res.crash_stats
    assert cs.recoveries_from_checkpoint == cs.crashes
    assert cs.recoveries_without_checkpoint == 0
    assert cs.intervals_lost == 0
    assert res.unverifiable == []
    assert cs.checkpoints_written > 0


def test_chaos_sweep_actually_crashes():
    """The sweep must exercise recovery, not vacuously pass."""
    total = sum(
        get_app("tsp").run(nprocs=4, crash_rate=0.02, crash_seed=s,
                           checkpoint=True).crash_stats.crashes
        for s in CHAOS_SEEDS)
    assert total > 0


def test_checkpoint_recovery_charges_recovery_cycles(tsp_free):
    res = get_app("tsp").run(nprocs=4, crash_rate=0.02, crash_seed=11,
                             checkpoint=True)
    assert res.crash_stats.crashes > 0
    assert res.aggregate_ledger().totals.get(CostCategory.RECOVERY, 0.0) > 0
    # RECOVERY stays out of the Figure 3 overhead taxonomy.
    assert "recovery" not in res.overhead_breakdown()
    # Crashes cost time: the recovered run is slower than the free one.
    assert res.runtime_cycles > tsp_free.runtime_cycles


def test_master_declares_deaths(tsp_free):
    res = get_app("tsp").run(nprocs=4, crash_rate=0.02, crash_seed=11,
                             checkpoint=True)
    cs = res.crash_stats
    assert cs.deaths_declared == cs.crashes > 0


# ---------------------------------------------------------------------- #
# Degradation without checkpoints: sound, explicit, never silent.
# ---------------------------------------------------------------------- #
def test_no_checkpoint_degradation_is_explicit(water_free):
    res = get_app("water").run(nprocs=4, crash_rate=0.01, crash_seed=7)
    cs = res.crash_stats
    st = res.detector_stats
    assert cs.crashes > 0
    assert cs.recoveries_without_checkpoint == cs.crashes
    assert cs.recoveries_from_checkpoint == 0
    assert cs.intervals_lost > 0
    # Metadata died: there must be unverifiable pair entries, counted.
    assert res.unverifiable
    assert st.unverifiable_pairs > 0
    assert st.unverifiable_reports == len(res.unverifiable)
    for entry in res.unverifiable:
        assert entry.verdict == "unverifiable"
        assert entry.granularity == "page"
        assert entry.lost_intervals  # names the lost interval id(s)
        assert "UNVERIFIABLE" in str(entry)
        assert "lost:" in str(entry)
    # Checks not touching a lost interval are unaffected: every surviving
    # race is also in the crash-free report.
    assert set(_report_lines(res)) <= set(_report_lines(water_free))
    # ... and some were genuinely unresolvable (the run lost information).
    assert len(res.races) < len(water_free.races)


def test_lost_intervals_never_silently_dropped(water_free):
    """Every crash-free race whose intervals were lost must resurface as
    an unverifiable pair (at page granularity) rather than vanish."""
    res = get_app("water").run(nprocs=4, crash_rate=0.01, crash_seed=7)
    lost_ids = set()
    for entry in res.unverifiable:
        lost_ids.update(entry.lost_intervals)
    found = {str(r) for r in res.races}
    unverifiable_sides = {(e.a.pid, e.a.index) for e in res.unverifiable} \
        | {(e.b.pid, e.b.index) for e in res.unverifiable}
    for race in water_free.races:
        if str(race) in found:
            continue
        # A missing race must involve an interval from an unverifiable
        # pair (same epoch scope; indexes shift only past recovery).
        sides = {(race.a.pid, race.a.index), (race.b.pid, race.b.index)}
        assert sides & unverifiable_sides, (
            f"race silently dropped with no unverifiable trace: {race}")


# ---------------------------------------------------------------------- #
# Determinism and the explicit schedule.
# ---------------------------------------------------------------------- #
def test_same_crash_seed_reproduces_run_exactly():
    a = get_app("water").run(nprocs=4, crash_rate=0.01, crash_seed=7)
    b = get_app("water").run(nprocs=4, crash_rate=0.01, crash_seed=7)
    assert a.crash_stats.summary() == b.crash_stats.summary()
    assert a.runtime_cycles == b.runtime_cycles
    assert _report_lines(a) == _report_lines(b)
    assert [str(e) for e in a.unverifiable] == [str(e) for e in b.unverifiable]


def test_crash_at_kills_named_pid_at_named_barrier():
    res = get_app("sor").run(nprocs=4, crash_at=((2, 1),), checkpoint=True)
    cs = res.crash_stats
    assert cs.crashes == 1
    assert cs.by_kind == {"barrier": 1}
    assert cs.recoveries_from_checkpoint == 1


def test_crash_at_master_rejected():
    with pytest.raises(ValueError, match="master"):
        get_app("sor").config(nprocs=4, crash_at=((0, 1),))


# ---------------------------------------------------------------------- #
# Crashes disabled (default): byte-identical artifacts.
# ---------------------------------------------------------------------- #
def test_default_run_has_zero_crash_surface(tsp_free):
    cs = tsp_free.crash_stats
    assert cs.summary() == {k: 0 for k in cs.summary()}
    assert tsp_free.unverifiable == []
    ledger = tsp_free.aggregate_ledger()
    assert ledger.totals.get(CostCategory.RECOVERY, 0.0) == 0.0


def test_explicit_zero_rate_identical_to_default(tsp_free):
    res = get_app("tsp").run(nprocs=4, crash_rate=0.0, crash_seed=99)
    assert res.runtime_cycles == tsp_free.runtime_cycles
    assert _report_lines(res) == _report_lines(tsp_free)
    assert res.traffic.total_messages == tsp_free.traffic.total_messages


# ---------------------------------------------------------------------- #
# Fail-stop baseline (recovery disabled).
# ---------------------------------------------------------------------- #
def test_fail_stop_crash_deadlocks_survivors():
    with pytest.raises(DeadlockError) as exc_info:
        get_app("water").run(nprocs=4, crash_rate=0.01, crash_seed=7,
                             crash_recovery=False)
    err = exc_info.value
    assert err.crashed  # names the fail-stop node(s)
    assert "unrecovered crash" in str(err)
