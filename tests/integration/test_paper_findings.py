"""The paper's §5 headline results, end to end at 8 processors.

"We used this technique to check for data races in implementations of four
common parallel applications.  Our system correctly found races in two."
"""

import pytest

from repro.apps.registry import APPLICATIONS
from repro.core.report import RaceKind, involves_symbol


@pytest.fixture(scope="module")
def runs():
    return {name: spec.run(nprocs=8)
            for name, spec in APPLICATIONS.items()}


def test_fft_race_free(runs):
    assert runs["fft"].races == []


def test_sor_race_free(runs):
    assert runs["sor"].races == []


def test_tsp_benign_bound_races(runs):
    races = runs["tsp"].races
    assert races, "TSP must report data races"
    assert all(involves_symbol(r, "tsp_bound") for r in races)
    assert all(r.kind is RaceKind.READ_WRITE for r in races)


def test_water_write_write_bug(runs):
    races = runs["water"].races
    assert races, "Water must report the Splash2 bug"
    assert all(involves_symbol(r, "water_poteng") for r in races)
    assert any(r.kind is RaceKind.WRITE_WRITE for r in races)


def test_slowdown_band(runs):
    """Average slowdown ≈ 2x (the paper's headline: 2.2)."""
    from repro.apps.base import measure
    slowdowns = [measure(APPLICATIONS[name], nprocs=8).slowdown
                 for name in APPLICATIONS]
    avg = sum(slowdowns) / len(slowdowns)
    assert 1.3 < avg < 3.0
    assert all(1.1 < s < 3.5 for s in slowdowns)


def test_interval_ordering_across_apps(runs):
    ipb = {name: res.intervals_per_barrier for name, res in runs.items()}
    assert ipb["fft"] == ipb["sor"] == 2.0
    assert ipb["tsp"] > ipb["water"] > 2.0


def test_every_report_carries_identification(runs):
    """§6.1: each race report includes the shared-segment address, the
    resolved symbol, and the interval indexes of both sides."""
    for res in runs.values():
        for r in res.races:
            assert r.addr >= 0
            assert r.symbol and not r.symbol.startswith("0x")
            assert r.a.index > 0 and r.b.index > 0
            assert r.a.pid != r.b.pid
