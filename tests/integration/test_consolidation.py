"""Consolidation between barriers (§6.3): detection and GC without
global synchronization for lock-heavy programs."""

import pytest

from tests.helpers import run_app, run_app_with_system


def _lock_heavy_app(env, rounds=12):
    """Many lock intervals between barriers, plus one unsynchronized
    write to provoke a race."""
    x = env.malloc(1, name="counter")
    racy = env.malloc(1, name="racy", page_aligned=True)
    env.barrier()
    for _i in range(rounds):
        with env.locked(1):
            env.store(x, env.load(x) + 1)
    env.store(racy, env.pid)
    env.barrier()
    return env.load(x)


def test_consolidation_retires_interval_records():
    system, res = run_app_with_system(_lock_heavy_app, nprocs=4,
                                      consolidation_interval=6)
    # Records were retired mid-epoch: the store never held the full
    # epoch's interval count at once.
    assert res.results == [48] * 4


def test_consolidation_preserves_race_findings():
    with_cons = run_app(_lock_heavy_app, nprocs=4, consolidation_interval=6)
    without = run_app(_lock_heavy_app, nprocs=4)
    keys_with = {r.key() for r in with_cons.races}
    keys_without = {r.key() for r in without.races}
    # The racy word must be found either way.
    assert any(k[1] is not None for k in keys_with)
    racy_with = {r.addr for r in with_cons.races}
    racy_without = {r.addr for r in without.races}
    assert racy_with == racy_without


def test_consolidation_never_invents_races():
    def clean(env):
        x = env.malloc(1, name="x")
        env.barrier()
        for _ in range(10):
            with env.locked(1):
                env.store(x, env.load(x) + 1)
        env.barrier()

    res = run_app(clean, nprocs=4, consolidation_interval=4)
    assert res.races == []


def test_explicit_consolidate_call():
    from repro.dsm.cvm import CVM
    from tests.helpers import small_config

    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        with env.locked(1):
            env.store(x, 1)
        with env.locked(1):
            env.store(x, 2)
        # Everything so far is ordered for this process; a manual
        # consolidation retires what everyone has already seen.
        retired = env.system.consolidate(env.pid)
        env.barrier()
        return retired

    system, res = run_app_with_system(app, nprocs=2)
    assert all(isinstance(r, int) for r in res.results)
