"""Cross-run resume: ``--resume-from`` reproduces the uninterrupted run.

A checkpointed run persists one snapshot per (node, barrier generation).
A resumed run re-executes deterministically and, at the directory's
common covered generation, *validates* that its recomputed state matches
the stored snapshots byte for byte before reinstalling them — so a
resume under a changed configuration fails loudly instead of silently
diverging, and a successful resume's report is byte-identical to the
original's.
"""

import os

import pytest

from repro.apps.registry import get_app
from repro.dsm.cvm import CVM
from repro.errors import CheckpointError

APP = "water"
NPROCS = 4


def _report_lines(result):
    return sorted(str(r) for r in result.races)


@pytest.fixture(scope="module")
def checkpointed(tmp_path_factory):
    d = str(tmp_path_factory.mktemp("ckpts"))
    result = get_app(APP).run(nprocs=NPROCS, checkpoint_dir=d)
    return d, result


def test_resume_reproduces_report_byte_identically(checkpointed):
    d, original = checkpointed
    resumed = get_app(APP).run(nprocs=NPROCS, resume_from=d)
    assert _report_lines(resumed) == _report_lines(original)
    assert resumed.runtime_cycles == original.runtime_cycles
    assert resumed.detector_stats == original.detector_stats
    assert resumed.shared_instr_calls == original.shared_instr_calls


def test_resume_installs_every_node(checkpointed):
    d, _original = checkpointed
    spec = get_app(APP)
    cfg = spec.config(nprocs=NPROCS, resume_from=d)
    system = CVM(cfg)
    system.run(spec.func, spec.default_params)
    assert system.resumed_nodes == NPROCS


def test_resume_via_cli_flag(checkpointed, tmp_path):
    d, original = checkpointed
    from repro.cli import main
    orig_path = tmp_path / "orig.txt"
    res_path = tmp_path / "resumed.txt"
    orig_path.write_text(
        "".join(line + "\n" for line in _report_lines(original)))
    rc = main(["run", APP, "--procs", str(NPROCS),
               "--resume-from", d, "--report", str(res_path)])
    assert rc == 1  # water races -> exit code 1 (repro.exitcodes)
    assert res_path.read_text() == orig_path.read_text()


def test_resume_with_wrong_nprocs_rejected(checkpointed):
    d, _original = checkpointed
    with pytest.raises(CheckpointError):
        get_app(APP).run(nprocs=NPROCS * 2, resume_from=d)


def test_resume_from_empty_directory_rejected(tmp_path):
    empty = str(tmp_path / "nothing")
    os.makedirs(empty)
    with pytest.raises(CheckpointError):
        get_app(APP).run(nprocs=NPROCS, resume_from=empty)


def test_resume_with_diverging_config_rejected(checkpointed):
    """A resumed run validates recomputed state against the snapshots;
    a different scheduling seed diverges and must be caught, not
    silently installed."""
    d, _original = checkpointed
    from repro.errors import ProcessFailure
    with pytest.raises(ProcessFailure, match="diverged") as exc_info:
        get_app(APP).run(nprocs=NPROCS, resume_from=d, seed=1,
                         policy="random")
    assert isinstance(exc_info.value.__cause__, CheckpointError)


def test_resume_from_delta_directory(tmp_path):
    """Delta-encoded checkpoint directories resume identically (the
    chain replays into full snapshots first)."""
    d = str(tmp_path / "delta")
    spec = get_app(APP)
    original = spec.run(nprocs=NPROCS, checkpoint_dir=d,
                        checkpoint_delta=True)
    resumed = spec.run(nprocs=NPROCS, resume_from=d,
                       checkpoint_delta=True)
    assert _report_lines(resumed) == _report_lines(original)
    assert resumed.runtime_cycles == original.runtime_cycles
