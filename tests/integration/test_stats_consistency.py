"""Stats counters are consistent under crashes and abandoned protocols.

Two accounting bugs are pinned here:

* ``ShardingStats`` counters used to be incremented *before* the scatter
  and reduce sends — a ``RetryExhaustedError`` mid-phase (a shard owner
  unreachable on a lossy network) abandoned the epoch to the centralized
  fallback but left ``shards_dispatched``/``records_shipped`` inflated
  for work whose results were thrown away.  The phases now accumulate
  into a staged ``ShardingStats`` merged only after the epoch commits.

* ``TrafficStats`` per-tag message counts must agree across a crash /
  no-crash pair for the synchronization-level tags (the crash layer adds
  only its own ``recovery_*``/``election_*`` traffic): counting happens
  at confirmed delivery inside the transport, never optimistically
  before a send that then dies with the sender.
"""

import pytest

from repro.apps.registry import get_app
from repro.net.faults import FaultPlan, FaultRates
from repro.replay.trace import SYNC_TAGS


def _sync_tag_counts(result):
    return {tag: result.traffic.messages_by_tag.get(tag, 0)
            for tag in SYNC_TAGS}


# ---------------------------------------------------------------------- #
# ShardingStats: abandoned epochs contribute nothing.
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def all_shards_dropped():
    """Drop (nearly) every ``detect_shard`` scatter datagram with a tiny
    retry budget: every epoch's scatter exhausts its retries and falls
    back to centralized detection."""
    plan = FaultPlan(by_tag={"detect_shard": FaultRates(drop=0.95)}, seed=3)
    return get_app("sor").run(nprocs=4, sharded_detection=True,
                              fault_plan=plan, retry_budget=2)


def test_abandoned_shard_epochs_leave_no_counts(all_shards_dropped):
    sh = all_shards_dropped.sharding_stats
    assert sh.fallbacks_network > 0
    assert sh.epochs_sharded == 0
    # The regression: these used to read as if the abandoned scatters
    # had succeeded.
    assert sh.shards_dispatched == 0
    assert sh.records_shipped == 0
    assert sh.bytes_scattered == 0
    assert sh.bytes_reduced == 0


def test_abandoned_shard_epochs_still_detect(all_shards_dropped):
    """The fallback is sound: the centralized pass produces the same
    verdicts as a run that never sharded."""
    plain = get_app("sor").run(nprocs=4)
    assert ([str(r) for r in all_shards_dropped.races]
            == [str(r) for r in plain.races])
    assert all_shards_dropped.detector_stats == plain.detector_stats


def test_committed_epochs_count_exactly_once():
    """Fault-free sharding: dispatched shards match the per-epoch plan
    sizes — no double counting from the staged merge."""
    res = get_app("sor").run(nprocs=4, sharded_detection=True)
    sh = res.sharding_stats
    assert sh.epochs_sharded > 0
    assert sh.fallbacks_network == sh.fallbacks_owner_crash == 0
    assert sh.shards_dispatched > 0
    # A second identical run agrees counter for counter.
    again = get_app("sor").run(nprocs=4, sharded_detection=True)
    assert sh.summary() == again.sharding_stats.summary()


def test_partial_shard_loss_commits_only_surviving_epochs():
    """A milder drop rate lets some epochs commit and others fall back;
    committed counts must reflect only the committed epochs."""
    plan = FaultPlan(by_tag={"detect_shard": FaultRates(drop=0.6)}, seed=5)
    res = get_app("sor").run(nprocs=4, sharded_detection=True,
                             fault_plan=plan, retry_budget=2)
    sh = res.sharding_stats
    assert sh.epochs_sharded + sh.epochs_centralized > 0
    if sh.epochs_sharded == 0:
        assert sh.shards_dispatched == 0
    else:
        assert sh.shards_dispatched > 0
    # Fallbacks and commits partition the sharded attempts.
    assert sh.fallbacks_network > 0


# ---------------------------------------------------------------------- #
# TrafficStats: crash / no-crash pairs agree on synchronization traffic.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("crash_seed", [7, 11])
def test_sync_traffic_identical_across_crash_pair(crash_seed):
    spec = get_app("tsp")
    free = spec.run(nprocs=4)
    crashy = spec.run(nprocs=4, crash_rate=0.02, crash_seed=crash_seed,
                      checkpoint=True)
    assert crashy.crash_stats.crashes > 0
    assert _sync_tag_counts(crashy) == _sync_tag_counts(free)


def test_declared_death_adds_only_recovery_tags():
    """An explicit manager-killing crash (deaths declared, locks
    migrated) still leaves the synchronization-tag counts untouched;
    the crash layer's additions all carry their own tags."""
    spec = get_app("tsp")
    free = spec.run(nprocs=4)
    crashy = spec.run(nprocs=4, crash_at=((1, 1),), checkpoint=True)
    assert crashy.crash_stats.deaths_declared == 1
    assert _sync_tag_counts(crashy) == _sync_tag_counts(free)
    extra = {tag for tag, n in crashy.traffic.messages_by_tag.items()
             if n != free.traffic.messages_by_tag.get(tag, 0)}
    assert extra  # recovery is not free...
    assert not extra & SYNC_TAGS  # ...but never inflates sync counts
