"""Lock-manager death: managed locks migrate to the lowest live pid.

The bug this guards against: the static ``lid % nprocs`` manager
assignment never moved, so a lock whose manager pid crashed left every
later acquirer sending its ``lock_request`` to a silent node — blocked
waiters stranded for the rest of the run.  Recovery now re-homes each
dead manager's locks (queue and prepared-grant state intact) onto the
lowest live pid when the master declares the death, and the runs below
complete with reports byte-identical to the crash-free run.

Manager placement used by these cells: ``tsp``'s BOUND_LOCK (lid 1) is
managed by P1 at 4 procs; ``water``'s GLOBAL_LOCK (lid 99) by P3 at 4
procs; ``queue_racy``'s QUEUE_LOCK (lid 0) by P0 — the initial master,
so killing it exercises migration *through* a coordinator failover.
"""

import pytest

from repro.apps.queue_racy import QueueParams
from repro.apps.registry import get_app
from repro.sim.costmodel import CostCategory


def _report_lines(result):
    return sorted(str(r) for r in result.races)


@pytest.fixture(scope="module")
def tsp_free():
    return get_app("tsp").run(nprocs=4)


def test_lock_manager_crash_migrates_and_matches_crash_free(tsp_free):
    """P1 manages tsp's bound lock; kill it at a barrier and the lock
    must be re-homed (to P0) with checkpoint recovery keeping the race
    report byte-identical."""
    res = get_app("tsp").run(nprocs=4, crash_at=((1, 1),), checkpoint=True)
    assert res.crash_stats.crashes == 1
    assert res.crash_stats.deaths_declared == 1
    assert res.crash_stats.locks_migrated >= 1
    assert _report_lines(res) == _report_lines(tsp_free)
    assert res.detector_stats == tsp_free.detector_stats


def test_non_adjacent_manager_crash_migrates(tsp_free):
    """Same cell at a later generation: migration is not a one-shot."""
    res = get_app("tsp").run(nprocs=4, crash_at=((1, 2),), checkpoint=True)
    assert res.crash_stats.locks_migrated >= 1
    assert _report_lines(res) == _report_lines(tsp_free)


def test_highest_pid_manager_crash_migrates():
    """water's global lock lands on P3 (99 % 4); its death re-homes the
    lock across the whole pid range."""
    spec = get_app("water")
    free = spec.run(nprocs=4)
    res = spec.run(nprocs=4, crash_at=((3, 1),), checkpoint=True)
    assert res.crash_stats.locks_migrated >= 1
    assert _report_lines(res) == _report_lines(free)
    assert res.detector_stats == free.detector_stats


def test_manager_crash_without_checkpoint_completes():
    """Without checkpoints the report legitimately degrades (lost
    bitmaps become unverifiable entries) but the run must still
    *complete* — waiters unstrand through the migrated manager."""
    res = get_app("tsp").run(nprocs=4, crash_at=((1, 1),))
    assert res.crash_stats.locks_migrated >= 1
    assert res.barriers_completed > 0
    assert res.unverifiable  # degradation is loud, not silent


# ---------------------------------------------------------------------- #
# The ISSUE acceptance cell: kill queue_racy's lock-manager pid (P0,
# also the initial master) mid-contention.
# ---------------------------------------------------------------------- #
def test_queue_racy_lock_manager_crash_mid_contention():
    spec = get_app("queue_racy")
    params = QueueParams(with_sync=True)  # contended QUEUE_LOCK
    free = spec.run(nprocs=3, params=params)
    res = spec.run(nprocs=3, params=params, master_failover=True,
                   crash_at=((0, 2),), checkpoint=True)
    assert res.crash_stats.crashes == 1
    assert res.failover_stats.elections_held == 1
    assert res.crash_stats.locks_migrated == 1
    assert res.lock_acquires == free.lock_acquires
    assert _report_lines(res) == _report_lines(free)


def test_migration_handoff_message_priced_under_recovery():
    """When the new manager is not the coordinator, re-homing ships the
    lock state in a ``lock_migrate`` message priced under RECOVERY.  The
    cell: P0 dies first (coordinator fails over to P1), recovers, then
    P3 — the global lock's manager — dies; the lowest live pid is P0
    again, which is no longer the coordinator, so the handoff crosses
    the wire.  Reports stay byte-identical throughout."""
    spec = get_app("water")
    free = spec.run(nprocs=4)
    res = spec.run(nprocs=4, master_failover=True,
                   crash_at=((0, 1), (3, 2)), checkpoint=True)
    assert res.failover_stats.elections_held == 1
    assert res.crash_stats.locks_migrated >= 2
    assert res.traffic.messages_by_tag.get("lock_migrate", 0) > 0
    assert res.aggregate_ledger().totals[CostCategory.RECOVERY] > 0
    assert _report_lines(res) == _report_lines(free)
    # Crash-free runs never migrate:
    assert "lock_migrate" not in free.traffic.messages_by_tag


def test_no_migration_without_manager_death(tsp_free):
    assert tsp_free.crash_stats.locks_migrated == 0
