"""Combined chaos: node crashes and network faults injected together.

The crash-tolerance and lossy-network layers were each validated alone
(test_crash_recovery.py, the net suite); this matrix drives them
*simultaneously* across a seed sweep and asserts the composed guarantees:

* with checkpoints, the race report stays byte-identical to the clean
  run under any (crash_rate, loss_rate) cell of the sweep;
* recovery traffic rides the reliable channel — the recovery protocol
  must not bypass retransmission when the network is lossy;
* without checkpoints, degradation stays sound: lost-metadata pairs
  surface as explicit unverifiable entries, never silently vanish.
"""

import pytest

from repro.apps.registry import get_app
from repro.dsm.cvm import CVM
from repro.net.reliable import ReliableChannel

MATRIX = [(0.02, 0.0), (0.0, 0.05), (0.02, 0.05), (0.01, 0.1)]
SEEDS = [1, 2, 3]


def _report_lines(result):
    return sorted(str(r) for r in result.races)


@pytest.fixture(scope="module")
def tsp_free():
    return get_app("tsp").run(nprocs=4)


@pytest.mark.parametrize("crash_rate,loss_rate", MATRIX)
def test_chaos_cell_reports_byte_identical(crash_rate, loss_rate, tsp_free):
    for seed in SEEDS:
        res = get_app("tsp").run(
            nprocs=4, crash_rate=crash_rate, crash_seed=seed,
            loss_rate=loss_rate, fault_seed=seed, checkpoint=True)
        assert _report_lines(res) == _report_lines(tsp_free), (
            f"report diverged at crash={crash_rate} loss={loss_rate} "
            f"seed={seed}")
        assert res.unverifiable == []


def test_matrix_exercises_both_fault_kinds():
    """The sweep must actually crash nodes AND drop datagrams somewhere —
    the composed guarantee is vacuous otherwise."""
    crashes = retransmits = 0
    for crash_rate, loss_rate in MATRIX:
        for seed in SEEDS:
            res = get_app("tsp").run(
                nprocs=4, crash_rate=crash_rate, crash_seed=seed,
                loss_rate=loss_rate, fault_seed=seed, checkpoint=True)
            crashes += res.crash_stats.crashes
            retransmits += res.traffic.retransmits
    assert crashes > 0
    assert retransmits > 0


def _run_with_send_spy(**config_overrides):
    spec = get_app("tsp")
    cfg = spec.config(nprocs=4, **config_overrides)
    system = CVM(cfg)
    assert isinstance(system.net, ReliableChannel)
    tags = []
    original_send = system.net.send

    def spying_send(tag, *args, **kwargs):
        tags.append(tag)
        return original_send(tag, *args, **kwargs)

    system.net.send = spying_send
    result = system.run(spec.func, spec.default_params)
    return result, tags


def test_recovery_requests_ride_reliable_channel():
    """With faults on, the master's recovery orders must go through the
    reliable channel — a dropped order would strand the crashed node."""
    result, tags = _run_with_send_spy(
        crash_rate=0.02, crash_seed=2, loss_rate=0.05, fault_seed=2,
        checkpoint=True)
    assert result.crash_stats.crashes > 0
    assert "recovery_request" in tags


def test_recovery_pages_ride_reliable_channel():
    """Checkpoint-less recovery refetches page copies from their
    managers; those transfers must survive a lossy network too."""
    result, tags = _run_with_send_spy(
        crash_rate=0.02, crash_seed=2, loss_rate=0.05, fault_seed=2)
    assert result.crash_stats.recoveries_without_checkpoint > 0
    assert "recovery_request" in tags
    assert "recovery_page" in tags


def test_recovery_uses_bare_transport_without_faults():
    """Faults off: the channel is the bare transport (byte-identity with
    fault-free builds), recovery included."""
    spec = get_app("tsp")
    cfg = spec.config(nprocs=4, crash_rate=0.02, crash_seed=2,
                      checkpoint=True)
    system = CVM(cfg)
    assert not isinstance(system.net, ReliableChannel)
    assert system.net is system.transport


def test_combined_chaos_without_checkpoints_degrades_soundly():
    clean = get_app("water").run(nprocs=4)
    res = get_app("water").run(nprocs=4, crash_rate=0.01, crash_seed=7,
                               loss_rate=0.05, fault_seed=7)
    cs, st = res.crash_stats, res.detector_stats
    assert cs.crashes > 0
    assert cs.intervals_lost > 0
    assert res.unverifiable
    assert st.unverifiable_pairs > 0
    # Surviving races are a subset of the clean report; anything missing
    # is covered by an unverifiable entry (soundness under double chaos).
    assert set(_report_lines(res)) <= set(_report_lines(clean))
    unverifiable_sides = {(e.a.pid, e.a.index) for e in res.unverifiable} \
        | {(e.b.pid, e.b.index) for e in res.unverifiable}
    found = {str(r) for r in res.races}
    for race in clean.races:
        if str(race) not in found:
            sides = {(race.a.pid, race.a.index),
                     (race.b.pid, race.b.index)}
            assert sides & unverifiable_sides, (
                f"race silently dropped under combined chaos: {race}")


def test_combined_chaos_deterministic():
    kwargs = dict(nprocs=4, crash_rate=0.02, crash_seed=5,
                  loss_rate=0.05, fault_seed=5, checkpoint=True)
    a = get_app("tsp").run(**kwargs)
    b = get_app("tsp").run(**kwargs)
    assert a.runtime_cycles == b.runtime_cycles
    assert _report_lines(a) == _report_lines(b)
    assert a.traffic.retransmits == b.traffic.retransmits
    assert a.crash_stats.summary() == b.crash_stats.summary()


# ---------------------------------------------------------------------- #
# Master crashes join the matrix: with failover enabled the coordinator
# is just another mortal process, and the composed guarantees must hold
# through an election + detection-state migration.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("crash_rate,loss_rate", MATRIX)
def test_chaos_cell_with_master_failover_byte_identical(crash_rate,
                                                        loss_rate,
                                                        tsp_free):
    for seed in SEEDS:
        res = get_app("tsp").run(
            nprocs=4, crash_rate=crash_rate, crash_seed=seed,
            loss_rate=loss_rate, fault_seed=seed, checkpoint=True,
            master_failover=True)
        assert _report_lines(res) == _report_lines(tsp_free), (
            f"report diverged at crash={crash_rate} loss={loss_rate} "
            f"seed={seed} with master failover")
        assert res.unverifiable == []
        # Immunity is lifted: nothing on the master is ever suppressed.
        assert res.crash_stats.master_crashes_suppressed == 0


def test_failover_messages_ride_reliable_channel():
    """Election votes, the journal transfer and the re-solicitation round
    all go through the reliable channel — a dropped election message
    would strand the whole barrier."""
    result, tags = _run_with_send_spy(
        crash_at=((0, 1),), master_failover=True,
        loss_rate=0.05, fault_seed=2, checkpoint=True)
    assert result.failover_stats.elections_held == 1
    for tag in ("election_vote", "coordinator_announce",
                "coordinator_state", "resolicit_request",
                "resolicit_reply"):
        assert tag in tags, f"missing failover message {tag!r}"


def test_resolicitation_is_delta_encoded():
    """Each survivor resends only its *own* records past the winner's
    pre-election horizon — the reply payloads (record counts) must sum to
    exactly ``records_resolicited``, with no full-epoch re-shipment."""
    spec = get_app("tsp")
    cfg = spec.config(nprocs=4, crash_at=((0, 1),), master_failover=True,
                      checkpoint=True)
    system = CVM(cfg)
    replies = []
    original_send = system.net.send

    def spying_send(tag, src, dst, payload, *args, **kwargs):
        if tag == "resolicit_reply":
            replies.append((src, payload))
        return original_send(tag, src, dst, payload, *args, **kwargs)

    system.net.send = spying_send
    result = system.run(spec.func, spec.default_params)
    assert result.failover_stats.elections_held == 1
    assert replies, "no re-solicitation round observed"
    assert (sum(count for _, count in replies)
            == result.failover_stats.records_resolicited)
    # Delta encoding: every survivor replies once per election, with its
    # own records only — small counts, never the whole epoch's metadata.
    assert len(replies) == cfg.nprocs - 1


# ---------------------------------------------------------------------- #
# Resume across a coordinator election: a checkpointed run whose
# coordinator crashed and was replaced must be resumable, reproducing the
# election (same winner, same migrated state) and the race report
# byte-identically.
# ---------------------------------------------------------------------- #
def _failover_cell_kwargs(tmp_path=None, resume=False):
    kw = dict(nprocs=4, crash_at=((0, 1),), master_failover=True)
    if resume:
        kw["resume_from"] = str(tmp_path)
    else:
        kw["checkpoint_dir"] = str(tmp_path)
    return kw


def test_resume_past_coordinator_election(tmp_path):
    spec = get_app("tsp")
    original = spec.run(**_failover_cell_kwargs(tmp_path))
    assert original.failover_stats.elections_held == 1
    resumed = spec.run(**_failover_cell_kwargs(tmp_path, resume=True))
    assert resumed.failover_stats.elections_held == 1
    assert _report_lines(resumed) == _report_lines(original)
    assert resumed.detector_stats == original.detector_stats
    assert resumed.runtime_cycles == original.runtime_cycles


def test_resume_past_rate_driven_election(tmp_path):
    """Same coverage on the rate-driven schedule (crashes decided by the
    injector, not pinned), including the election."""
    spec = get_app("tsp")
    kwargs = dict(nprocs=4, crash_rate=0.02, crash_seed=11,
                  master_failover=True)
    original = spec.run(checkpoint_dir=str(tmp_path), **kwargs)
    assert original.failover_stats.elections_held > 0
    resumed = spec.run(resume_from=str(tmp_path), **kwargs)
    assert resumed.failover_stats.elections_held == \
        original.failover_stats.elections_held
    assert _report_lines(resumed) == _report_lines(original)
    assert resumed.runtime_cycles == original.runtime_cycles


def test_resume_past_election_with_sharded_detection(tmp_path):
    """The stacked case: sharded detection stays byte-identical through a
    checkpoint, an election, and a resume of the whole history."""
    spec = get_app("tsp")
    original = spec.run(sharded_detection=True,
                        **_failover_cell_kwargs(tmp_path))
    assert original.failover_stats.elections_held == 1
    assert original.sharding_stats.epochs_sharded > 0
    resumed = spec.run(sharded_detection=True,
                       **_failover_cell_kwargs(tmp_path, resume=True))
    assert _report_lines(resumed) == _report_lines(original)
    assert resumed.detector_stats == original.detector_stats
    assert resumed.runtime_cycles == original.runtime_cycles


# ---------------------------------------------------------------------- #
# The two-level filter joins the matrix: under crashes, a lossy network
# and sharded detection simultaneously, filter-on reports must stay
# byte-identical to filter-off (the filter only skips comparisons the
# digests prove empty) — and to the clean run, checkpoints on.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("crash_rate,loss_rate", MATRIX)
def test_chaos_cell_coarse_filter_byte_identical(crash_rate, loss_rate,
                                                 tsp_free):
    for seed in SEEDS:
        kwargs = dict(nprocs=4, crash_rate=crash_rate, crash_seed=seed,
                      loss_rate=loss_rate, fault_seed=seed,
                      checkpoint=True, sharded_detection=True)
        on = get_app("tsp").run(coarse_filter=True, **kwargs)
        off = get_app("tsp").run(coarse_filter=False, **kwargs)
        assert _report_lines(on) == _report_lines(off) \
            == _report_lines(tsp_free), (
                f"filter changed the report at crash={crash_rate} "
                f"loss={loss_rate} seed={seed}")
        assert on.unverifiable == off.unverifiable == []


def test_chaos_filter_cells_exercise_the_filter():
    """The filter matrix is vacuous unless some cell actually filters
    pairs and some cell actually crashes/drops."""
    filtered = crashes = retransmits = 0
    for crash_rate, loss_rate in MATRIX:
        for seed in SEEDS:
            res = get_app("tsp").run(
                nprocs=4, crash_rate=crash_rate, crash_seed=seed,
                loss_rate=loss_rate, fault_seed=seed, checkpoint=True,
                sharded_detection=True, coarse_filter=True)
            filtered += res.detector_stats.pairs_filtered
            crashes += res.crash_stats.crashes
            retransmits += res.traffic.retransmits
    assert filtered > 0
    assert crashes > 0
    assert retransmits > 0


# ---------------------------------------------------------------------- #
# Journal durability: a torn coordinator-journal write must be detected
# on restore and fall back to the checkpointed coordinator section —
# never installed as garbage, never fatal.
# ---------------------------------------------------------------------- #
def test_torn_journal_falls_back_to_checkpoint(monkeypatch, tsp_free):
    from repro.dsm.coordinator import CoordinatorRole

    original_journal = CoordinatorRole.journal_state

    def torn_journal(self, clock, cost_model):
        nbytes = original_journal(self, clock, cost_model)
        # Tear every journal write mid-frame, as a crash mid-write would.
        self._journal = self._journal[:len(self._journal) // 2]
        return nbytes

    monkeypatch.setattr(CoordinatorRole, "journal_state", torn_journal)
    res = get_app("tsp").run(nprocs=4, crash_at=((0, 1),),
                             master_failover=True, checkpoint=True)
    assert res.failover_stats.elections_held == 1
    assert res.failover_stats.journal_fallbacks == 1
    assert _report_lines(res) == _report_lines(tsp_free)
    assert res.unverifiable == []
