"""The paper's §1 headline claims, measured end to end."""

import pytest

from repro.apps.registry import APPLICATIONS
from repro.dsm.cvm import CVM
from repro.instrument.binaries import table2_reports


@pytest.fixture(scope="module")
def runs():
    return {name: spec.run(nprocs=8)
            for name, spec in APPLICATIONS.items()}


def test_claim_i_static_elimination_over_99_percent():
    """(i) 'we can statically eliminate over 99% of all load and store
    instructions as potential race participants'."""
    for app, report in table2_reports().items():
        assert report.eliminated_fraction > 0.99, app


def test_claim_ii_dynamic_elimination_over_70_percent(runs):
    """(ii) 'we dynamically eliminate over 70% of all program execution
    from consideration by using LRC ordering information' — the share of
    intervals never involved in any unsynchronized-sharing pair, averaged
    over the applications."""
    unused = [1.0 - res.detector_stats.intervals_used_fraction
              for res in runs.values()]
    assert sum(unused) / len(unused) > 0.7


def test_claim_iii_slowdown_factor_of_two(runs):
    """(iii) 'the slowdown ... is approximately a factor of two'."""
    from repro.apps.base import measure
    slowdowns = [measure(spec, nprocs=8).slowdown
                 for spec in APPLICATIONS.values()]
    avg = sum(slowdowns) / len(slowdowns)
    assert 1.5 < avg < 2.8


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_findings_stable_across_schedules(seed):
    """The qualitative findings — which variables race, and in which
    programs — hold under every scheduling seed, even though the exact
    number of race pairs varies with the interleaving."""
    for app, racy_symbol in (("tsp", "tsp_bound"),
                             ("water", "water_poteng")):
        spec = APPLICATIONS[app]
        res = CVM(spec.config(nprocs=4, policy="random",
                              seed=seed)).run(spec.func, spec.default_params)
        assert res.races, (app, seed)
        assert all(r.symbol.split("+")[0] == racy_symbol
                   for r in res.races), (app, seed)
    for app in ("fft", "sor"):
        spec = APPLICATIONS[app]
        res = CVM(spec.config(nprocs=4, policy="random",
                              seed=seed)).run(spec.func, spec.default_params)
        assert res.races == [], (app, seed)


@pytest.mark.slow
def test_paper_scale_inputs_runnable():
    """The paper's Table 1 input sets actually run (slow: minutes)."""
    spec = APPLICATIONS["sor"]
    res = spec.run(nprocs=8, params=spec.paper_params,
                   segment_words=1 << 20)
    assert res.races == []
    assert res.memory_kbytes > 2000  # 512x512 doubles x 2 grids
