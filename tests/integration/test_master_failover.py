"""Master failover integration: the coordinator (P0, running the race
detector) crashes and a surviving process takes over.

The headline guarantees (ISSUE 5 acceptance criteria):

* with ``--master-failover``, killing P0 at any barrier generation >= 1
  on every registered application completes the run and reproduces the
  crash-free race reports byte-identically — modulo pairs the degraded
  detector soundly marks ``unverifiable`` when the master's own epoch
  metadata died with it (checkpointing eliminates even those);
* the election is deterministic: the same crash schedule elects the same
  coordinator and produces the same reports, every run;
* all failover work is charged under ``CostCategory.FAILOVER``, outside
  the overhead breakdown, so failover-off artifacts stay byte-identical;
* with failover off, targeting P0 stays rejected with an error pointing
  at the flag.
"""

import pytest

from repro.apps.registry import APPLICATIONS, get_app
from repro.sim.costmodel import OVERHEAD_CATEGORIES, CostCategory

APP_NAMES = sorted(APPLICATIONS)


def _report_lines(result):
    return sorted(str(r) for r in result.races)


def _free_run(name):
    return get_app(name).run(nprocs=4)


@pytest.fixture(scope="module")
def free_runs():
    return {name: _free_run(name) for name in APP_NAMES}


# ---------------------------------------------------------------------- #
# The acceptance sweep: every registered app, master killed at gen >= 1.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("name", APP_NAMES)
def test_master_crash_with_checkpoints_is_byte_identical(name, free_runs):
    for gen in (1, 2):
        res = get_app(name).run(nprocs=4, master_failover=True,
                                crash_at=((0, gen),), checkpoint=True)
        assert _report_lines(res) == _report_lines(free_runs[name]), (
            f"{name}: report diverged after master crash at gen {gen}")
        assert res.unverifiable == []
        assert res.failover_stats.elections_held == 1
        assert res.crash_stats.master_crashes_suppressed == 0


@pytest.mark.parametrize("name", APP_NAMES)
def test_master_crash_without_checkpoints_degrades_soundly(name, free_runs):
    """No checkpoint: the master's own current-epoch bitmaps died with it.
    Surviving reports are a subset of the crash-free run; anything missing
    resurfaces as an explicit unverifiable pair, never silently."""
    res = get_app(name).run(nprocs=4, master_failover=True,
                            crash_at=((0, 1),))
    free = free_runs[name]
    assert set(_report_lines(res)) <= set(_report_lines(free))
    missing = set(_report_lines(free)) - set(_report_lines(res))
    if missing:
        assert res.unverifiable
        sides = {(e.a.pid, e.a.index) for e in res.unverifiable} \
            | {(e.b.pid, e.b.index) for e in res.unverifiable}
        for race in free.races:
            if str(race) in _report_lines(res):
                continue
            assert {(race.a.pid, race.a.index),
                    (race.b.pid, race.b.index)} & sides, (
                f"{name}: race silently dropped on master crash: {race}")
    st = res.detector_stats
    assert st.unverifiable_reports == len(res.unverifiable)


def test_master_crash_at_later_generation_completes():
    res = get_app("sor").run(nprocs=4, master_failover=True,
                             crash_at=((0, 3),), checkpoint=True)
    assert res.barriers_completed > 3
    assert res.failover_stats.elections_held == 1


# ---------------------------------------------------------------------- #
# Election determinism and role stickiness.
# ---------------------------------------------------------------------- #
def test_failover_is_deterministic():
    runs = [get_app("water").run(nprocs=4, master_failover=True,
                                 crash_at=((0, 1),), checkpoint=True)
            for _ in range(2)]
    a, b = runs
    assert _report_lines(a) == _report_lines(b)
    assert a.runtime_cycles == b.runtime_cycles
    assert a.failover_stats.summary() == b.failover_stats.summary()
    assert a.crash_stats.summary() == b.crash_stats.summary()


def test_successive_coordinator_deaths_cascade_down_the_ranks():
    # P0 dies at gen 1 (P1 elected), then P1 dies at gen 2 (P2 elected).
    res = get_app("sor").run(nprocs=4, master_failover=True,
                             crash_at=((0, 1), (1, 2)), checkpoint=True)
    assert res.failover_stats.elections_held == 2
    assert _report_lines(res) == _report_lines(_free_run("sor"))


def test_non_master_crashes_do_not_trigger_elections():
    res = get_app("sor").run(nprocs=4, master_failover=True,
                             crash_at=((2, 1),), checkpoint=True)
    assert res.crash_stats.crashes == 1
    assert res.failover_stats.elections_held == 0
    assert res.failover_stats.state_bytes_migrated == 0


# ---------------------------------------------------------------------- #
# Accounting: failover work never leaks into the overhead breakdown.
# ---------------------------------------------------------------------- #
def test_failover_charges_stay_out_of_overhead():
    res = get_app("sor").run(nprocs=4, master_failover=True,
                             crash_at=((0, 1),), checkpoint=True)
    ledger = res.aggregate_ledger()
    assert ledger.totals[CostCategory.FAILOVER] > 0
    # The Figure 3 taxonomy never grows a failover bar: all of it is
    # priced outside the overhead breakdown, like RECOVERY/RETRANSMIT.
    assert CostCategory.FAILOVER not in OVERHEAD_CATEGORIES
    assert CostCategory.FAILOVER.value not in res.overhead_breakdown()
    # One journal write at startup plus one after every detection pass.
    assert res.failover_stats.state_checkpoints == res.barriers_completed + 1


def test_failover_off_run_has_zero_failover_state():
    res = get_app("sor").run(nprocs=4)
    assert not res.config.master_failover
    assert res.aggregate_ledger().totals[CostCategory.FAILOVER] == 0.0
    assert all(v == 0 for v in res.failover_stats.summary().values())


def test_failover_on_without_crash_changes_no_reports():
    base = _free_run("water")
    res = get_app("water").run(nprocs=4, master_failover=True)
    assert _report_lines(res) == _report_lines(base)
    assert res.failover_stats.elections_held == 0
    assert res.failover_stats.state_checkpoints > 0  # journal maintained


# ---------------------------------------------------------------------- #
# The guard rails with failover off.
# ---------------------------------------------------------------------- #
def test_crash_at_master_still_rejected_without_failover():
    with pytest.raises(ValueError, match="--master-failover"):
        get_app("sor").config(nprocs=4, crash_at=((0, 1),))


def test_rate_hits_on_master_still_suppressed_without_failover():
    res = get_app("tsp").run(nprocs=4, crash_rate=0.02, crash_seed=11,
                             checkpoint=True)
    assert res.crash_stats.master_crashes_suppressed > 0
    assert res.failover_stats.elections_held == 0


def test_rate_hits_on_master_crash_it_with_failover():
    # The same schedule with failover on: immunity is lifted, nothing is
    # suppressed, and the master's deaths are handled by election.
    res = get_app("tsp").run(nprocs=4, crash_rate=0.02, crash_seed=11,
                             checkpoint=True, master_failover=True)
    assert res.crash_stats.master_crashes_suppressed == 0
    assert res.failover_stats.elections_held > 0
    assert _report_lines(res) == _report_lines(_free_run("tsp"))


# ---------------------------------------------------------------------- #
# Composition with the lossy network (the CI smoke sweep's guarantee).
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_master_crash_on_lossy_network_reports_byte_identical(seed,
                                                              free_runs):
    res = get_app("tsp").run(nprocs=4, master_failover=True,
                             crash_at=((0, 1),), checkpoint=True,
                             loss_rate=0.05, fault_seed=seed)
    assert _report_lines(res) == _report_lines(free_runs["tsp"])
    assert res.unverifiable == []
    assert res.failover_stats.elections_held == 1
    assert res.traffic.retransmits > 0
