"""Mini-ISA data structures."""

import pytest

from repro.instrument.isa import (ALU_OPS, MEMORY_OPS, BinaryImage, Function,
                                  Instruction, ObjectFile, Op, Section)


def test_memory_predicate():
    assert Instruction(Op.LD, reg="t0", base="fp").is_memory
    assert Instruction(Op.ST, reg="t0", base="t1").is_memory
    assert not Instruction(Op.ADD, reg="t0", srcs=("t0", "t1")).is_memory
    assert set(MEMORY_OPS) == {Op.LD, Op.ST}


def test_render_formats():
    assert Instruction(Op.LD, reg="t0", base="fp",
                       offset=4).render() == "ld t0, 4(fp)"
    assert Instruction(Op.LI, reg="v0", imm=-3).render() == "li v0, -3"
    assert Instruction(Op.MOV, reg="a0",
                       srcs=("t1",)).render() == "mov a0, t1"
    assert Instruction(Op.ADD, reg="t0",
                       srcs=("t0", "t1")).render() == "add t0, t0, t1"
    assert Instruction(Op.BEQZ, srcs=("t0",),
                       target="x").render() == "beqz t0, x"
    assert Instruction(Op.J, target="x").render() == "j x"
    assert Instruction(Op.CALL, target="f").render() == "call f"
    assert Instruction(Op.LABEL, target="l").render() == "l:"
    assert Instruction(Op.RET).render() == "ret"


def test_function_memory_instructions():
    fn = Function("f", [
        Instruction(Op.LD, reg="t0", base="fp"),
        Instruction(Op.ADD, reg="t0", srcs=("t0", "t0")),
        Instruction(Op.ST, reg="t0", base="gp"),
        Instruction(Op.RET),
    ])
    assert len(fn) == 4
    assert len(fn.memory_instructions) == 2
    assert fn.section is Section.APP


def test_object_file_and_image():
    obj = ObjectFile("o")
    obj.add(Function("a", [Instruction(Op.RET)]))
    obj.add(Function("b", [Instruction(Op.LD, reg="t0", base="fp"),
                           Instruction(Op.RET)]))
    image = BinaryImage("img")
    for fn in obj.functions:
        image.add(fn)
    assert image.total_instructions() == 3
    assert image.load_store_count() == 1
    # Iteration is name-sorted and deterministic.
    names = [fn.name for fn, _ins in image.all_instructions()]
    assert names == sorted(names)


def test_image_rejects_duplicates():
    image = BinaryImage("img")
    image.add(Function("a", [Instruction(Op.RET)]))
    with pytest.raises(ValueError):
        image.add(Function("a", [Instruction(Op.RET)]))


def test_alu_ops_render_with_opcode_names():
    for op in ALU_OPS:
        text = Instruction(op, reg="t0", srcs=("t1", "t2")).render()
        assert text.startswith(op.value)
