"""Assembler/disassembler round-trips."""

import pytest

from repro.errors import InstrumentationError
from repro.instrument.asm import (assemble, assemble_line, disassemble,
                                  disassemble_function)
from repro.instrument.binaries import binary_for
from repro.instrument.compiler import compile_kernel
from repro.instrument.isa import Instruction, Op, Section
from repro.instrument.kernels import KERNEL_PROGRAMS
from repro.instrument.machine import Machine
from repro.instrument.linker import link


@pytest.mark.parametrize("line,op", [
    ("ld t0, 4(fp)", Op.LD),
    ("st a0, -2(t3)", Op.ST),
    ("li v0, -17", Op.LI),
    ("mov t1, a2", Op.MOV),
    ("add t0, t0, t1", Op.ADD),
    ("slt t2, t0, t1", Op.SLT),
    ("beqz t0, f.else1", Op.BEQZ),
    ("j f.head2", Op.J),
    ("call malloc", Op.CALL),
    ("f.head2:", Op.LABEL),
    ("ret", Op.RET),
    ("nop", Op.NOP),
])
def test_assemble_line_ops(line, op):
    assert assemble_line(line).op is op


def test_assemble_line_roundtrip():
    for line in ("ld t0, 4(fp)", "st a0, 0(t3)", "li v0, 5",
                 "add t0, t0, t1", "beqz t0, x.l1", "call foo", "ret"):
        ins = assemble_line(line)
        from repro.instrument.asm import disassemble_instruction
        assert disassemble_instruction(ins) == line


def test_bad_line_rejected():
    with pytest.raises(InstrumentationError):
        assemble_line("frobnicate t0")


def test_assemble_function_block():
    text = """
.func main section=app frame=2
    st a0, 0(fp)
    ld t0, 0(fp)
    li t1, 2
    mul t0, t0, t1
    mov v0, t0
    ret
.endfunc
"""
    obj = assemble(text)
    assert len(obj.functions) == 1
    fn = obj.functions[0]
    assert fn.name == "main" and fn.section is Section.APP
    assert fn.frame_words == 2
    # Executable after linking.
    image = link("asmtest", [obj], libraries=[])
    assert Machine(image).run(21) == 42


def test_assemble_errors():
    with pytest.raises(InstrumentationError):
        assemble("ld t0, 0(fp)")  # outside .func
    with pytest.raises(InstrumentationError):
        assemble(".func f section=app\nret")  # unterminated
    with pytest.raises(InstrumentationError):
        assemble(".func f section=mars\n.endfunc")


def test_comments_and_blank_lines_ignored():
    obj = assemble("""
# a comment
.func f section=app
    li v0, 1   # inline comment
    ret
.endfunc
""")
    assert len(obj.functions[0].instructions) == 2


@pytest.mark.parametrize("app", ["sor", "tsp"])
def test_compiled_kernels_roundtrip(app):
    """disassemble -> assemble preserves semantics for real kernels."""
    obj = compile_kernel(KERNEL_PROGRAMS[app]())
    text = disassemble(obj)
    rebuilt = assemble(text, name=obj.name)
    assert [f.name for f in rebuilt.functions] == \
        [f.name for f in obj.functions]
    for a, b in zip(obj.functions, rebuilt.functions):
        assert len(a.instructions) == len(b.instructions)
        for x, y in zip(a.instructions, b.instructions):
            assert x.op is y.op and x.reg == y.reg and x.base == y.base \
                and x.offset == y.offset and x.target == y.target
        assert a.frame_words == b.frame_words


def test_roundtrip_preserves_execution():
    obj = compile_kernel(KERNEL_PROGRAMS["sor"]())
    rebuilt = assemble(disassemble(obj), name="sor")
    img1 = link("a", [obj], libraries=[])
    img2 = link("b", [rebuilt], libraries=[])
    assert Machine(img1).run(6, 6) == Machine(img2).run(6, 6)


def test_disassemble_full_binary_is_large():
    text = disassemble(binary_for("sor"))
    assert text.count(".func") > 300  # app + synthesized libraries
    assert "section=library" in text and "section=cvm" in text
