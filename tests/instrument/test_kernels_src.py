"""Text-source kernels (LU): parse, classify, execute."""

import pytest

from repro.apps.lu import reference_lu_trace
from repro.instrument.atom import AtomRewriter
from repro.instrument.binaries import binary_for
from repro.instrument.kernels_src import lu_program
from repro.instrument.machine import AnalysisCounter, Machine


def test_lu_program_parses():
    prog = lu_program()
    assert {fn.name for fn in prog.functions} == \
        {"lu_init", "lu_eliminate", "lu_trace", "main"}
    assert prog.statics == ("lu_steps",)


def test_lu_binary_links_and_classifies():
    image = binary_for("lu")
    report = AtomRewriter().analyze(image)
    assert report.eliminated_fraction > 0.99
    assert report.instrumented > 0


def test_lu_kernel_executes_matching_reference():
    """The mini-ISA LU (integer arithmetic) matches a Python reference
    using the same integer input and integer division."""
    n = 6

    def reference():
        a = [[(r * 13 + c * 7) - (r + c) + (4 * n if r == c else 0)
              for c in range(n)] for r in range(n)]
        for k in range(n - 1):
            for r in range(k + 1, n):
                factor = int(a[r][k] / a[k][k])
                a[r][k] = factor
                for c in range(k + 1, n):
                    a[r][c] -= factor * a[k][c]
        return sum(a[i][i] for i in range(n))

    image = binary_for("lu")
    assert Machine(image).run(n) == reference()


def test_lu_instrumented_fires_only_for_matrix():
    image = AtomRewriter().instrument(binary_for("lu"))
    hook = AnalysisCounter()
    m = Machine(image, analysis_hook=hook, max_steps=3_000_000)
    m.run(6)
    assert m.analysis_calls > 0
    assert hook.private == 0        # all surviving accesses hit the heap
    assert hook.shared == m.analysis_calls


def test_unknown_binary_rejected():
    with pytest.raises(KeyError):
        binary_for("doom")
