"""The ATOM-analogue static filter and rewriter."""

import pytest

from repro.instrument import kernel_ast as K
from repro.instrument.atom import (ANALYSIS_SYMBOL, AccessClass, AtomRewriter,
                                   classify)
from repro.instrument.compiler import compile_kernel
from repro.instrument.isa import (FP, GP, Function, Instruction, Op, Section)
from repro.instrument.linker import LIBC_CORE, link


def make_fn(section, base):
    code = [Instruction(Op.LD, reg="t0", base=base, offset=0),
            Instruction(Op.RET)]
    return Function("f", code, section)


@pytest.mark.parametrize("section,base,expected", [
    (Section.LIBC, "t3", AccessClass.LIBRARY),
    (Section.LIBC, FP, AccessClass.LIBRARY),   # section rule wins
    (Section.CVM, "t3", AccessClass.CVM),
    (Section.APP, FP, AccessClass.STACK),
    (Section.APP, "sp", AccessClass.STACK),
    (Section.APP, GP, AccessClass.STATIC),
    (Section.APP, "t5", AccessClass.INSTRUMENTED),
])
def test_classification_rules(section, base, expected):
    fn = make_fn(section, base)
    assert classify(fn, fn.instructions[0]) is expected


def test_classify_rejects_non_memory():
    fn = make_fn(Section.APP, FP)
    with pytest.raises(ValueError):
        classify(fn, fn.instructions[1])


def _toy_binary():
    prog = K.KernelProgram("toy", statics=("g",), functions=[
        K.KernelFunction(
            "main", params=("p",), locals_=("i",),
            body=[
                K.Assign(K.Local("i"), K.Const(0)),
                K.Assign(K.Static("g"), K.Local("i")),
                K.Assign(K.Deref(K.Param("p"), K.Local("i")), K.Const(7)),
                K.Return(K.Deref(K.Param("p"), K.Const(0))),
            ]),
    ])
    return link("toy", [compile_kernel(prog)], libraries=[LIBC_CORE])


def test_analyze_counts_every_memory_op():
    report = AtomRewriter().analyze(_toy_binary())
    assert report.total_memory_ops == sum(report.counts.values())
    assert report.counts[AccessClass.LIBRARY] > 0
    assert report.counts[AccessClass.CVM] > 0
    assert report.counts[AccessClass.STACK] > 0
    assert report.counts[AccessClass.STATIC] == 1
    assert report.counts[AccessClass.INSTRUMENTED] == 2  # the two derefs
    assert report.eliminated_fraction > 0.99


def test_instrument_inserts_calls_before_survivors_only():
    image = _toy_binary()
    out = AtomRewriter().instrument(image)
    main = out.functions["main"]
    calls = [i for i, ins in enumerate(main.instructions)
             if ins.op is Op.CALL and ins.target == ANALYSIS_SYMBOL]
    assert len(calls) == 2
    # Each analysis call immediately precedes a memory instruction.
    for i in calls:
        assert main.instructions[i + 1].is_memory
    # Library code untouched.
    lib_name = next(n for n, f in out.functions.items()
                    if f.section is Section.LIBC)
    assert all(ins.target != ANALYSIS_SYMBOL
               for ins in out.functions[lib_name].instructions
               if ins.op is Op.CALL)


def test_instrumented_binary_preserves_counts():
    image = _toy_binary()
    report = AtomRewriter().analyze(image)
    out = AtomRewriter().instrument(image)
    assert out.total_instructions() == (image.total_instructions()
                                        + report.instrumented)
    assert out.entry == image.entry


def test_report_row_shape():
    row = AtomRewriter().analyze(_toy_binary()).row()
    assert set(row) == {"stack", "static", "library", "cvm", "instrumented"}
