"""Linker, synthetic libraries, and the four application binaries."""

import pytest

from repro.errors import LinkError
from repro.instrument import kernel_ast as K
from repro.instrument.binaries import APP_NAMES, binary_for, table2_reports
from repro.instrument.compiler import compile_kernel
from repro.instrument.isa import Section
from repro.instrument.linker import (LIBC_CORE, LIBCVM, LIBM, link,
                                     synthesize_library)


def test_synthetic_library_deterministic():
    a = synthesize_library(LIBC_CORE)
    b = synthesize_library(LIBC_CORE)
    assert len(a.functions) == len(b.functions)
    for fa, fb in zip(a.functions, b.functions):
        assert [i.render() for i in fa.instructions] == \
            [i.render() for i in fb.instructions]


def test_synthetic_library_memory_mix():
    obj = synthesize_library(LIBC_CORE)
    total = sum(len(f.instructions) for f in obj.functions)
    mem = sum(len(f.memory_instructions) for f in obj.functions)
    assert 0.2 < mem / total < 0.5
    assert all(f.section is Section.LIBC for f in obj.functions)


def test_link_requires_entry():
    prog = K.KernelProgram("t", functions=[K.KernelFunction("not_main")])
    with pytest.raises(LinkError):
        link("t", [compile_kernel(prog)])


def test_link_rejects_duplicate_symbols():
    prog = K.KernelProgram("t", functions=[K.KernelFunction("main")])
    obj = compile_kernel(prog)
    with pytest.raises(ValueError):
        link("t", [obj, obj])


def test_cvm_always_linked():
    prog = K.KernelProgram("t", functions=[K.KernelFunction("main")])
    image = link("t", [compile_kernel(prog)])
    assert any(f.section is Section.CVM for f in image.functions.values())


@pytest.mark.parametrize("app", APP_NAMES)
def test_app_binaries_link(app):
    image = binary_for(app)
    assert image.entry == "main"
    assert image.load_store_count() > 1000


def test_table2_shape():
    """The paper's Table 2 claims, structurally."""
    reports = table2_reports()
    for app, rep in reports.items():
        # >99% statically eliminated.
        assert rep.eliminated_fraction > 0.99, app
        row = rep.row()
        # Library code dominates.
        assert row["library"] > row["stack"] + row["static"] + \
            row["instrumented"]
        assert row["cvm"] > 0
        assert row["instrumented"] > 0
    # Math-heavy binaries carry the larger libraries (FFT/Water vs
    # SOR/TSP), and Water has the largest instrumented residue.
    assert reports["fft"].row()["library"] > reports["sor"].row()["library"]
    assert reports["water"].row()["library"] > reports["tsp"].row()["library"]
    inst = {app: rep.row()["instrumented"] for app, rep in reports.items()}
    assert inst["water"] == max(inst.values())
    assert inst["sor"] == min(inst.values())


def test_all_kernels_compile_and_run_on_machine():
    """Every application kernel binary executes end to end after
    instrumentation (small inputs)."""
    from repro.instrument.atom import AtomRewriter
    from repro.instrument.machine import Machine

    args = {"fft": (16,), "sor": (6, 6), "tsp": (5,), "water": (4, 1)}
    for app in APP_NAMES:
        instrumented = AtomRewriter().instrument(binary_for(app))
        m = Machine(instrumented, max_steps=2_000_000)
        m.run(*args[app])
        assert m.analysis_calls > 0, app
