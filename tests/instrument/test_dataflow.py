"""Provenance-tracking enhanced static filter (§6.5's promised analysis)."""

import pytest

from repro.instrument import kernel_ast as K
from repro.instrument.atom import AccessClass, AtomRewriter
from repro.instrument.binaries import APP_NAMES, binary_for
from repro.instrument.compiler import compile_kernel
from repro.instrument.dataflow import (Provenance, ProvenanceFilter,
                                       _combine, classify_with_provenance,
                                       compare_filters, split_basic_blocks)
from repro.instrument.isa import FP, Function, Instruction, Op, Section
from repro.instrument.linker import link


def compile_fn(fn, statics=()):
    prog = K.KernelProgram("t", statics=statics, functions=[fn])
    return compile_kernel(prog).functions[0]


def test_combine_lattice():
    P = Provenance
    assert _combine(P.STACK, P.CONST) is P.STACK
    assert _combine(P.CONST, P.STATIC) is P.STATIC
    assert _combine(P.CONST, P.CONST) is P.CONST
    # Two pointers mixed: conservative.
    assert _combine(P.STACK, P.STACK) is P.UNKNOWN
    assert _combine(P.HEAP, P.STACK) is P.UNKNOWN
    # Pointer + unknown index: bounded-indexing assumption keeps the base.
    assert _combine(P.STACK, P.UNKNOWN) is P.STACK
    assert _combine(P.UNKNOWN, P.STATIC) is P.STATIC
    assert _combine(P.HEAP, P.CONST) is P.HEAP
    assert _combine(P.UNKNOWN, P.UNKNOWN) is P.UNKNOWN


def test_split_basic_blocks_simple():
    fn = Function("f", [
        Instruction(Op.LI, reg="t0", imm=1),
        Instruction(Op.BEQZ, srcs=("t0",), target="l1"),
        Instruction(Op.LI, reg="t1", imm=2),
        Instruction(Op.LABEL, target="l1"),
        Instruction(Op.RET),
    ])
    assert split_basic_blocks(fn) == [(0, 2), (2, 3), (3, 5)]


def test_variable_indexed_stack_array_recovered():
    """The key improvement: computed fp-derived addresses are now proven
    stack-resident, eliminating the baseline filter's false
    instrumentation."""
    fn = compile_fn(K.KernelFunction(
        "f", locals_=("i",), arrays=(("buf", 8),),
        body=[K.Assign(K.LocalArr("buf", K.Local("i")), K.Const(1)),
              K.Return(K.LocalArr("buf", K.Local("i")))]))
    classes = classify_with_provenance(fn, {})
    mem = {i: c for i, c in classes.items()}
    assert AccessClass.INSTRUMENTED not in mem.values()
    assert AccessClass.STACK in mem.values()


def test_pointer_deref_still_instrumented():
    fn = compile_fn(K.KernelFunction(
        "f", params=("p",),
        body=[K.Assign(K.Deref(K.Param("p"), K.Const(0)), K.Const(1))]))
    classes = classify_with_provenance(fn, {})
    assert AccessClass.INSTRUMENTED in classes.values()


def test_provenance_dies_at_block_boundary():
    """An address computed before a label is UNKNOWN after it (block-local
    analysis, exactly the paper's limitation)."""
    code = [
        # t0 = fp + 4 (stack address)
        Instruction(Op.LI, reg="t1", imm=4),
        Instruction(Op.ADD, reg="t0", srcs=(FP, "t1")),
        Instruction(Op.LD, reg="t2", base="t0", offset=0),   # provable
        Instruction(Op.LABEL, target="join"),
        Instruction(Op.LD, reg="t3", base="t0", offset=0),   # not provable
        Instruction(Op.RET),
    ]
    fn = Function("f", code, Section.APP)
    classes = classify_with_provenance(fn, {})
    assert classes[2] is AccessClass.STACK
    assert classes[4] is AccessClass.INSTRUMENTED


def test_call_clobbers_provenance():
    code = [
        Instruction(Op.LI, reg="t1", imm=4),
        Instruction(Op.ADD, reg="t0", srcs=(FP, "t1")),
        Instruction(Op.CALL, target="anything"),
        Instruction(Op.LD, reg="t2", base="t0", offset=0),
        Instruction(Op.RET),
    ]
    fn = Function("f", code, Section.APP)
    classes = classify_with_provenance(fn, {})
    assert classes[3] is AccessClass.INSTRUMENTED


def test_malloc_result_is_heap_hence_instrumented():
    code = [
        Instruction(Op.CALL, target="malloc"),
        Instruction(Op.MOV, reg="t0", srcs=("v0",)),
        Instruction(Op.ST, reg="t1", base="t0", offset=0),
        Instruction(Op.RET),
    ]
    fn = Function("f", code, Section.APP)
    classes = classify_with_provenance(fn, {})
    assert classes[2] is AccessClass.INSTRUMENTED


def test_loaded_pointer_unknown():
    code = [
        Instruction(Op.LD, reg="t0", base=FP, offset=0),   # stack load
        Instruction(Op.LD, reg="t1", base="t0", offset=0),  # via loaded ptr
        Instruction(Op.RET),
    ]
    fn = Function("f", code, Section.APP)
    classes = classify_with_provenance(fn, {})
    assert classes[0] is AccessClass.STACK
    assert classes[1] is AccessClass.INSTRUMENTED


def test_library_sections_untouched():
    code = [Instruction(Op.LD, reg="t0", base="t1", offset=0),
            Instruction(Op.RET)]
    fn = Function("libfn", code, Section.LIBC)
    classes = classify_with_provenance(fn, {})
    assert classes[0] is AccessClass.LIBRARY


@pytest.mark.parametrize("app", APP_NAMES)
def test_never_instruments_more_than_baseline(app):
    cmp_ = compare_filters(binary_for(app))
    assert cmp_.provenance_instrumented <= cmp_.baseline_instrumented
    assert 0 <= cmp_.reduction <= 1


def test_reduces_false_instrumentation_somewhere():
    """At least one application binary benefits (TSP's visited[] scratch
    array is the canonical case)."""
    reductions = {app: compare_filters(binary_for(app)).eliminated_extra
                  for app in APP_NAMES}
    assert any(v > 0 for v in reductions.values()), reductions


def test_report_totals_consistent():
    image = binary_for("sor")
    base = AtomRewriter().analyze(image)
    enhanced = ProvenanceFilter().analyze(image)
    assert base.total_memory_ops == enhanced.total_memory_ops
    assert enhanced.eliminated_fraction >= base.eliminated_fraction
