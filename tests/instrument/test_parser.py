"""Kernel-language parser: syntax, scoping, end-to-end execution."""

import pytest

from repro.errors import CompileError
from repro.instrument import kernel_ast as K
from repro.instrument.linker import link
from repro.instrument.machine import Machine
from repro.instrument.parser import compile_source, parse_kernel, tokenize


def run_main(source: str, *args: int) -> int:
    obj = compile_source(source)
    return Machine(link("t", [obj], libraries=[])).run(*args)


def test_tokenize_basics():
    toks = tokenize("func f(x) { return x + 1; } # comment")
    kinds = [t[0] for t in toks]
    assert kinds[0] == "kw" and toks[0][1] == "func"
    assert ("num", "1") in [(k, v) for k, v, _l in toks]
    assert kinds[-1] == "eof"


def test_tokenize_tracks_lines_and_rejects_garbage():
    toks = tokenize("func\nf")
    assert toks[1][2] == 2
    with pytest.raises(CompileError):
        tokenize("func @")


def test_parse_statics_and_function_shape():
    prog = parse_kernel("""
        static a, b;
        static c;
        func main(n) {
            local i;
            array buf[4];
            return 0;
        }
    """)
    assert prog.statics == ("a", "b", "c")
    [fn] = prog.functions
    assert fn.params == ("n",)
    assert fn.locals_ == ("i",)
    assert fn.arrays == (("buf", 4),)


def test_arithmetic_precedence():
    assert run_main("func main(x) { return 2 + 3 * x; }", 4) == 14
    assert run_main("func main(x) { return (2 + 3) * x; }", 4) == 20
    assert run_main("func main(x) { return 10 - 2 - 3; }", 0) == 5
    assert run_main("func main(x) { return 1 < 2; }", 0) == 1
    assert run_main("func main(x) { return 7 & 3 | 8; }", 0) == (7 & 3 | 8)


def test_for_loop_sum():
    src = """
        func main(n) {
            local i, s;
            s = 0;
            for (i = 0; i < n; i += 1) { s = s + i; }
            return s;
        }
    """
    assert run_main(src, 10) == 45


def test_for_loop_step():
    src = """
        func main(n) {
            local i, c;
            c = 0;
            for (i = 0; i < n; i += 3) { c = c + 1; }
            return c;
        }
    """
    assert run_main(src, 10) == 4


def test_while_and_if_else():
    src = """
        func main(n) {
            local c;
            c = 0;
            while (c < n) {
                if (c == 5) { return 99; } else { c = c + 2; }
            }
            return c;
        }
    """
    assert run_main(src, 8) == 8
    assert run_main(src, 6) == 6


def test_pointer_deref_vs_stack_array():
    src = """
        func main(n) {
            local p, i;
            array scratch[4];
            p = malloc(n);
            for (i = 0; i < n; i += 1) { p[i] = i * i; }
            scratch[1] = p[3];
            return scratch[1];
        }
    """
    assert run_main(src, 5) == 9
    # Classification: p[i] must be a Deref, scratch[1] a LocalArr.
    prog = parse_kernel(src)
    body = prog.functions[0].body
    loop = next(s for s in body if isinstance(s, K.For))
    assert isinstance(loop.body[0].target, K.Deref)
    store = next(s for s in body if isinstance(s, K.Assign)
                 and isinstance(s.target, K.LocalArr))
    assert store.target.name == "scratch"


def test_statics_and_calls():
    src = """
        static counter;
        func bump(by) { counter = counter + by; return counter; }
        func main(n) {
            bump(n);
            bump(n);
            return counter;
        }
    """
    assert run_main(src, 5) == 10


def test_return_void():
    src = """
        func noop() { return; }
        func main(n) { noop(); return n; }
    """
    assert run_main(src, 3) == 3


@pytest.mark.parametrize("bad,msg", [
    ("func main() { return ghost; }", "undeclared"),
    ("func main() { 5 = 3; }", "assign"),
    ("oops;", "expected"),
    ("func main( { }", "expected"),
    ("func main() { for (k = 0; j < 2; k += 1) { } }", "undeclared"),
    ("func main() { local i; for (i = 0; i < 2; i += 1) ; }", "expected"),
])
def test_parse_errors(bad, msg):
    with pytest.raises(CompileError) as exc:
        parse_kernel(bad)
    assert msg.lower() in str(exc.value).lower()


def test_for_condition_must_match_variable():
    with pytest.raises(CompileError):
        parse_kernel("""
            func main() {
                local i, j;
                for (i = 0; j < 2; i += 1) { }
            }
        """)


def test_parsed_source_equivalent_to_builder_ast():
    """The same kernel via text and via AST builders compiles to the same
    instruction stream."""
    from repro.instrument.compiler import compile_kernel
    text_obj = compile_source("""
        func main(n) {
            local i, s;
            s = 0;
            for (i = 0; i < n; i += 1) { s = s + i; }
            return s;
        }
    """)
    ast_prog = K.KernelProgram("kernel", functions=[K.KernelFunction(
        "main", params=("n",), locals_=("i", "s"),
        body=[
            K.Assign(K.Local("s"), K.Const(0)),
            K.For(K.Local("i"), K.Const(0), K.Param("n"),
                  [K.Assign(K.Local("s"),
                            K.Bin("+", K.Local("s"), K.Local("i")))]),
            K.Return(K.Local("s")),
        ])])
    ast_obj = compile_kernel(ast_prog)
    text_ins = [i.render() for i in text_obj.functions[0].instructions]
    ast_ins = [i.render() for i in ast_obj.functions[0].instructions]
    assert text_ins == ast_ins
