"""Runtime semantics of the grown kernel language: structs, shared-heap
allocation (``new``/``delete`` with free-list reuse), address-of, and
first-class function values — each exercised end to end (parse, compile
under both register allocators, link, execute)."""

import pytest

from repro.errors import CompileError, InstrumentationError, LinkError
from repro.instrument.atom import ANALYSIS_SYMBOL, AtomRewriter
from repro.instrument.isa import FUNC_BASE, Op
from repro.instrument.linker import link
from repro.instrument.machine import HEAP_BASE, AnalysisCounter, Machine
from repro.instrument.parser import compile_source

MODES = ("naive", "linear")


def build(src, mode="naive", **kw):
    obj = compile_source(src, "t", regalloc=mode)
    return link("t", [obj], libraries=[], include_cvm=False, **kw)


def run(src, *args, mode="naive"):
    return Machine(build(src, mode)).run(*args)


# ---------------------------------------------------------------------- #
# Structs and field access.
# ---------------------------------------------------------------------- #
STRUCT_SRC = """
struct Pair { a; b; }

func main() {
  local p: Pair;
  p = new Pair;
  p.a = 3;
  p.b = 39;
  return p.a + p.b;
}
"""


@pytest.mark.parametrize("mode", MODES)
def test_struct_fields(mode):
    assert run(STRUCT_SRC, mode=mode) == 42


@pytest.mark.parametrize("mode", MODES)
def test_chained_field_access(mode):
    src = """
    struct Node { val; next: Node; }
    func main() {
      local a: Node; local b: Node;
      a = new Node; b = new Node;
      a.next = b;
      b.val = 7;
      return a.next.val;
    }
    """
    assert run(src, mode=mode) == 7


def test_field_offsets_resolved_at_parse_time():
    obj = compile_source(STRUCT_SRC, "t")
    stores = [i for f in obj.functions for i in f.instructions
              if i.op is Op.ST and i.base not in ("fp", "gp")]
    assert {i.offset for i in stores} == {0, 1}  # p.a at +0, p.b at +1


# ---------------------------------------------------------------------- #
# Heap allocation and the free list.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("mode", MODES)
def test_delete_recycles_blocks(mode):
    """Exact-size LIFO reuse: free then reallocate the same size gives
    back the same address, so churn revisits the same words."""
    src = """
    struct Node { val; next: Node; }
    func main() {
      local a: Node; local b: Node;
      a = new Node;
      delete a;
      b = new Node;
      if (a == b) { return 1; }
      return 0;
    }
    """
    assert run(src, mode=mode) == 1


def test_different_sizes_do_not_alias():
    src = """
    func main() {
      local a; local b;
      a = new [4];
      delete a;
      b = new [8];
      if (a == b) { return 1; }
      return 0;
    }
    """
    assert run(src) == 0


def test_double_free_raises():
    src = """
    struct Node { val; next: Node; }
    func main() {
      local a: Node;
      a = new Node;
      delete a;
      delete a;
      return 0;
    }
    """
    with pytest.raises(InstrumentationError, match="unallocated"):
        run(src)


def test_new_allocations_are_heap_shared():
    """``new`` storage lands in the heap region, so its accesses survive
    the static filter and classify shared at run time."""
    img = AtomRewriter().instrument(build(STRUCT_SRC))
    hook = AnalysisCounter()
    m = Machine(img, analysis_hook=hook)
    assert m.run() == 42
    assert hook.shared >= 4  # two field stores + two field loads
    assert all(addr >= HEAP_BASE for addr, _ in hook.events)


# ---------------------------------------------------------------------- #
# Address-of.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("mode", MODES)
def test_addr_of_aliases_variable(mode):
    """Writes through &x must be visible through x — in linear mode this
    forces x to stay memory-homed."""
    src = """
    func main() {
      local x; local px;
      x = 1;
      px = &x;
      px[0] = px[0] + 41;
      return x;
    }
    """
    assert run(src, mode=mode) == 42


@pytest.mark.parametrize("mode", MODES)
def test_addr_of_array_passes_to_callee(mode):
    src = """
    func fill(buf, n) {
      local i;
      for (i = 0; i < n; i += 1) { buf[i] = i * i; }
      return 0;
    }
    func main() {
      array a[4];
      fill(&a, 4);
      return a[0] + a[1] + a[2] + a[3];
    }
    """
    assert run(src, mode=mode) == 0 + 1 + 4 + 9


# ---------------------------------------------------------------------- #
# Function values and indirect calls.
# ---------------------------------------------------------------------- #
FUNCVAL_SRC = """
func inc(x) { return x + 1; }
func dbl(x) { return x + x; }

func apply(f, v) { return f(v); }

func main(sel) {
  local f;
  f = inc;
  if (sel) { f = dbl; }
  return apply(f, 10) + f(1);
}
"""


@pytest.mark.parametrize("mode", MODES)
def test_function_values_and_indirect_calls(mode):
    assert run(FUNCVAL_SRC, 0, mode=mode) == 11 + 2
    assert run(FUNCVAL_SRC, 1, mode=mode) == 20 + 2


def test_function_addresses_stable_across_rewrites():
    """Instrumentation preserves symbol names, so a function address
    taken before the atom rewrite still resolves after it."""
    img = build(FUNCVAL_SRC)
    instrumented = AtomRewriter().instrument(img)
    for name in img.functions:
        assert (img.function_address(name)
                == instrumented.function_address(name))
    assert img.function_address("inc") >= FUNC_BASE
    assert img.function_by_address(img.function_address("dbl")) == "dbl"


def test_callr_through_bad_address_raises():
    src = """
    func main() {
      local f;
      f = 12345;
      return f(1);
    }
    """
    with pytest.raises(InstrumentationError, match="not a function"):
        run(src)


def test_la_of_undefined_function_is_link_error():
    from repro.instrument.asm import assemble
    obj = assemble("""
.func main section=app frame=0
    la t0, missing
    ret
.endfunc
""")
    with pytest.raises(LinkError, match="missing"):
        link("t", [obj], libraries=[], include_cvm=False)


def test_strict_link_rejects_undefined_calls():
    src = "func main() { return helper(1); }"
    obj = compile_source(src, "t")
    with pytest.raises(LinkError, match="helper"):
        link("t", [obj], libraries=[], include_cvm=False, strict=True)
    # Non-strict keeps the opaque-call contract.
    img = link("t", [obj], libraries=[], include_cvm=False)
    assert Machine(img).run() == 0


# ---------------------------------------------------------------------- #
# Context-sensitive checks (symbol table diagnostics).
# ---------------------------------------------------------------------- #
def test_field_on_untyped_variable_rejected():
    src = """
    struct Pair { a; b; }
    func main() { local p; p = new Pair; return p.a; }
    """
    with pytest.raises(CompileError, match="no declared struct type"):
        compile_source(src, "t")


def test_unknown_field_rejected_with_line():
    src = ("struct Pair { a; b; }\n"
           "func main() {\n"
           "  local p: Pair;\n"
           "  p = new Pair;\n"
           "  return p.c;\n"
           "}\n")
    with pytest.raises(CompileError, match=r"line 5.*no field 'c'"):
        compile_source(src, "t")
