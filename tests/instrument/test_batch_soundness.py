"""Batching soundness over the grown instruction set.

The coalescing pass tracks linear address forms inside basic blocks;
the new instruction shapes — ``la`` (function-address constants),
``callr`` (indirect calls), struct-field offsets, heap pointers from
``new`` — must either be tracked exactly or break tracking
*conservatively*.  Either way the observable contract is fixed: the
batched binary fires the identical per-word analysis event stream
(addresses, kinds, order) as the unbatched one, with no more procedure
calls.  A seeded fuzzer composes kernels from snippet templates and
checks that contract on every one.
"""

import random

import pytest

from repro.instrument.atom import ANALYSIS_SYMBOL, AtomRewriter
from repro.instrument.batch import coalesce_analysis_calls
from repro.instrument.linker import link
from repro.instrument.machine import AnalysisCounter, Machine
from repro.instrument.parser import compile_source

HEADER = """
struct Node { val; next: Node; }

func visit(n: Node) {
  n.val = n.val + 1;
  return n.val;
}

func twice(x) { return x + x; }
"""

#: Statement templates; each is a function of the RNG.  All write into
#: the shared arrays/structs set up by the harness below.
SNIPPETS = [
    lambda r: ("  for (i = 0; i < {n}; i += 1) {{ buf[i] = i; }}"
               .format(n=r.randint(2, 6))),
    lambda r: ("  for (i = 0; i < {n}; i += 1) {{ s = s + buf[i]; }}"
               .format(n=r.randint(2, 6))),
    lambda r: ("  for (i = 0; i < {n}; i += 1) {{ buf[i * 2] = buf[i]; }}"
               .format(n=r.randint(2, 4))),
    lambda r: "  node.val = node.val + {k};".format(k=r.randint(1, 9)),
    lambda r: "  s = s + node.next.val;",
    lambda r: "  s = s + visit(node);",
    lambda r: "  f = visit; s = s + f(node);",
    lambda r: "  f = twice; s = s + f({k});".format(k=r.randint(1, 9)),
    lambda r: "  tmp = new [{n}]; tmp[0] = s; s = s + tmp[0];"
              .format(n=r.randint(1, 4)),
    lambda r: ("  buf[{a}] = buf[{b}] + buf[{c}];"
               .format(a=r.randint(0, 11), b=r.randint(0, 11),
                       c=r.randint(0, 11))),
    lambda r: ("  if (s < {k}) {{ s = s + 1; }} else {{ s = s + 2; }}"
               .format(k=r.randint(1, 50))),
    # Provably-contiguous pairs — the runs the pass exists to merge.
    lambda r: ("  for (i = 0; i < {n}; i += 1) "
               "{{ buf[i * 2] = i; buf[i * 2 + 1] = i; }}"
               .format(n=r.randint(2, 5))),
    lambda r: ("  buf[{a}] = s; buf[{a} + 1] = s; buf[{a} + 2] = s;"
               .format(a=r.randint(0, 8))),
    lambda r: ("  s = s + buf[{a}] + buf[{a} + 1];"
               .format(a=r.randint(0, 10))),
]


def generate(seed: int) -> str:
    r = random.Random(seed)
    body = "\n".join(r.choice(SNIPPETS)(r) for _ in range(r.randint(4, 10)))
    return (HEADER + """
func main() {
  local i; local s; local f; local tmp; local buf; local node: Node;
  buf = new [24];
  node = new Node;
  node.next = new Node;
  s = 0;
""" + body + """
  return s;
}
""")


def run_pair(src: str):
    obj = compile_source(src, "fuzz")
    image = AtomRewriter().instrument(
        link("fuzz", [obj], libraries=[], include_cvm=False))
    batched, report = coalesce_analysis_calls(image)
    plain_hook, batch_hook = AnalysisCounter(), AnalysisCounter()
    plain = Machine(image, analysis_hook=plain_hook)
    fast = Machine(batched, analysis_hook=batch_hook)
    assert plain.run() == fast.run()
    return plain, fast, plain_hook, batch_hook, report


@pytest.mark.parametrize("seed", range(24))
def test_fuzzed_kernels_batch_soundly(seed):
    plain, fast, ph, bh, _report = run_pair(generate(seed))
    assert bh.events == ph.events            # same words, kinds, order
    assert (bh.shared, bh.private) == (ph.shared, ph.private)
    assert fast.analysis_calls <= plain.analysis_calls


def test_some_fuzzed_kernel_actually_coalesces():
    """The fuzzer must exercise the pass, not just tiptoe around it."""
    assert any(run_pair(generate(seed))[4].calls_eliminated > 0
               for seed in range(24))


def test_callr_is_a_batching_boundary():
    """An indirect call can run arbitrary code; runs must not be merged
    across it, and the value it returns must be treated as fresh."""
    src = HEADER + """
func main() {
  local f; local buf; local s;
  buf = new [4];
  f = visit;
  buf[0] = 1;
  f(buf);
  buf[1] = 2;
  return buf[0] + buf[1];
}
"""
    plain, fast, ph, bh, _ = run_pair(src)
    assert bh.events == ph.events


def test_la_result_is_deterministic_atom():
    """Two ``la`` of the same symbol load equal values; batching may
    rely on that (same atom) but must keep the event stream identical."""
    src = HEADER + """
func main() {
  local f; local g; local buf;
  buf = new [4];
  f = twice;
  buf[0] = f(3);
  g = twice;
  buf[1] = g(4);
  return buf[0] + buf[1];
}
"""
    plain, fast, ph, bh, _ = run_pair(src)
    assert bh.events == ph.events
    assert plain.run() == 6 + 8


def test_heap_pointer_loads_break_runs_conservatively():
    """buf[i] via a pointer loaded from a struct field: the base is a
    fresh memory value each block, so ranged merging across the reload
    must not misfire."""
    src = HEADER + """
func main() {
  local q; local node: Node; local s; local i;
  node = new Node;
  node.val = new [8];
  s = 0;
  for (i = 0; i < 4; i += 1) {
    q = node.val;
    q[i] = i;
    s = s + q[i];
  }
  return s;
}
"""
    plain, fast, ph, bh, _ = run_pair(src)
    assert bh.events == ph.events
    assert plain.run() == 0 + 1 + 2 + 3
