"""Kernel-language compiler: codegen shape and addressing discipline."""

import pytest

from repro.errors import CompileError
from repro.instrument import kernel_ast as K
from repro.instrument.compiler import compile_kernel
from repro.instrument.isa import FP, GP, Op


def compile_one(fn, statics=()):
    prog = K.KernelProgram("t", statics=statics, functions=[fn])
    return compile_kernel(prog).functions[0]


def mem_ops(fn):
    return [i for i in fn.instructions if i.is_memory]


def test_local_scalar_uses_fp():
    fn = compile_one(K.KernelFunction(
        "f", locals_=("a",),
        body=[K.Assign(K.Local("a"), K.Const(1)),
              K.Return(K.Local("a"))]))
    assert all(i.base == FP for i in mem_ops(fn))


def test_static_uses_gp():
    fn = compile_one(K.KernelFunction(
        "f", body=[K.Assign(K.Static("g"), K.Const(5)),
                   K.Return(K.Static("g"))]), statics=("g",))
    assert all(i.base == GP for i in mem_ops(fn))


def test_deref_uses_general_register():
    fn = compile_one(K.KernelFunction(
        "f", params=("p",),
        body=[K.Assign(K.Deref(K.Param("p"), K.Const(0)), K.Const(1))]))
    stores = [i for i in mem_ops(fn) if i.op is Op.ST and i.base not in (FP, GP)]
    assert stores, "pointer store must not be fp/gp-relative"


def test_const_indexed_stack_array_stays_fp():
    fn = compile_one(K.KernelFunction(
        "f", arrays=(("buf", 8),),
        body=[K.Assign(K.LocalArr("buf", K.Const(3)), K.Const(1)),
              K.Return(K.LocalArr("buf", K.Const(3)))]))
    assert all(i.base == FP for i in mem_ops(fn))


def test_variable_indexed_stack_array_loses_fp():
    """The paper's 'false instrumentation' source: computed stack-array
    addresses leave fp-relative form and get conservatively instrumented."""
    fn = compile_one(K.KernelFunction(
        "f", locals_=("i",), arrays=(("buf", 8),),
        body=[K.Assign(K.LocalArr("buf", K.Local("i")), K.Const(1))]))
    stores = [i for i in mem_ops(fn) if i.op is Op.ST]
    assert any(i.base not in (FP, GP) for i in stores)


def test_params_spilled_in_prologue():
    fn = compile_one(K.KernelFunction("f", params=("a", "b"),
                                      body=[K.Return(K.Param("a"))]))
    prologue = fn.instructions[:2]
    assert all(i.op is Op.ST and i.base == FP for i in prologue)


def test_loops_and_branches_have_labels():
    fn = compile_one(K.KernelFunction(
        "f", locals_=("i", "s"),
        body=[K.Assign(K.Local("s"), K.Const(0)),
              K.For(K.Local("i"), K.Const(0), K.Const(10),
                    [K.Assign(K.Local("s"),
                              K.Bin("+", K.Local("s"), K.Local("i")))]),
              K.Return(K.Local("s"))]))
    labels = [i for i in fn.instructions if i.op is Op.LABEL]
    branches = [i for i in fn.instructions if i.op in (Op.BEQZ, Op.J)]
    assert len(labels) >= 2 and branches
    targets = {i.target for i in labels}
    assert all(b.target in targets for b in branches)


def test_unknown_variable_rejected():
    with pytest.raises(CompileError):
        compile_one(K.KernelFunction("f", body=[K.Return(K.Local("ghost"))]))


def test_unknown_static_rejected():
    with pytest.raises(CompileError):
        compile_one(K.KernelFunction("f", body=[K.Return(K.Static("ghost"))]))


def test_duplicate_locals_rejected():
    with pytest.raises(CompileError):
        compile_one(K.KernelFunction("f", params=("a",), locals_=("a",),
                                     body=[]))


def test_duplicate_functions_rejected():
    fn = K.KernelFunction("f", body=[])
    with pytest.raises(CompileError):
        compile_kernel(K.KernelProgram("t", functions=[fn, fn]))


def test_function_always_returns():
    fn = compile_one(K.KernelFunction("f", body=[]))
    assert fn.instructions[-1].op is Op.RET


def test_frame_words_cover_locals_and_arrays():
    fn = compile_one(K.KernelFunction(
        "f", params=("p",), locals_=("a", "b"), arrays=(("arr", 10),),
        body=[]))
    assert fn.frame_words == 1 + 2 + 10


def test_call_moves_args_to_arg_registers():
    fn = compile_one(K.KernelFunction(
        "f", locals_=("x",),
        body=[K.ExprStmt(K.CallExpr("g", (K.Const(1), K.Const(2))))]))
    calls = [i for i in fn.instructions if i.op is Op.CALL]
    assert len(calls) == 1 and calls[0].target == "g"
    movs = [i for i in fn.instructions if i.op is Op.MOV]
    assert {m.reg for m in movs} >= {"a0", "a1"}
