"""Batched access instrumentation: the coalescing pass and the ranged
analysis-call dispatch.

The contract: a batched binary fires the *identical* per-word analysis
event stream (addresses, kinds, order) as the one-call-per-access
binary, while ``Machine.analysis_calls`` — the procedure-call count the
paper's "Proc Call" overhead bar prices — strictly shrinks wherever a
run was provably contiguous.
"""

import pytest

from repro.instrument.atom import ANALYSIS_SYMBOL, AtomRewriter
from repro.instrument.batch import coalesce_analysis_calls
from repro.instrument.binaries import APP_NAMES, binary_for
from repro.instrument.isa import (Function, Instruction, Op, Section,
                                  BinaryImage)
from repro.instrument.machine import AnalysisCounter, Machine

ALL_KERNELS = list(APP_NAMES) + ["lu"]


def _instrumented(app):
    return AtomRewriter().instrument(binary_for(app))


def _analysis_calls(image):
    return [ins for _fn, ins in image.all_instructions()
            if ins.op is Op.CALL and ins.target == ANALYSIS_SYMBOL]


# ---------------------------------------------------------------------- #
# Static properties of the rewrite.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("app", ALL_KERNELS)
def test_words_conserved(app):
    """Total announced words (ranged calls weighted by imm) match the
    original call count: nothing dropped, nothing double-announced."""
    image = _instrumented(app)
    batched, report = coalesce_analysis_calls(image)
    before = len(_analysis_calls(image))
    after_words = sum(ins.imm or 1 for ins in _analysis_calls(batched))
    assert after_words == before == report.calls_before
    assert len(_analysis_calls(batched)) == report.calls_after


def test_fft_butterfly_coalesces():
    """The FFT butterfly touches data[2i] then data[2i+1] — a provable
    run the pass must find."""
    _batched, report = coalesce_analysis_calls(_instrumented("fft"))
    assert report.ranged_calls > 0
    assert report.calls_eliminated > 0


def test_ranged_call_carries_count_in_imm():
    batched, report = coalesce_analysis_calls(_instrumented("fft"))
    ranged = [ins for ins in _analysis_calls(batched)
              if ins.imm is not None and ins.imm > 1]
    assert len(ranged) == report.ranged_calls
    for ins in ranged:
        assert ins.srcs and ins.srcs[1] in ("ld", "st")


def test_non_app_sections_untouched():
    image = _instrumented("fft")
    batched, _report = coalesce_analysis_calls(image)
    for name, fn in image.functions.items():
        if fn.section is not Section.APP:
            assert batched.functions[name] is fn


# ---------------------------------------------------------------------- #
# Dynamic equivalence: identical event streams, fewer calls.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("app,args", [("fft", (16,)), ("sor", (8, 8, 2)),
                                      ("tsp", (6,)), ("water", (8, 2)),
                                      ("lu", (8,))])
def test_event_stream_identical(app, args):
    image = _instrumented(app)
    batched, report = coalesce_analysis_calls(image)
    m_ref, m_bat = Machine(image), Machine(batched)
    r_ref = m_ref.run(*args)
    r_bat = m_bat.run(*args)
    assert r_ref == r_bat
    assert m_ref.analysis_hook.events == m_bat.analysis_hook.events
    assert m_ref.analysis_hook.shared == m_bat.analysis_hook.shared
    assert m_ref.analysis_hook.private == m_bat.analysis_hook.private
    assert m_bat.analysis_calls <= m_ref.analysis_calls
    if report.ranged_calls:
        # Any executed ranged call shrinks the dynamic call count.
        assert m_bat.analysis_calls < m_ref.analysis_calls or \
            m_ref.analysis_calls == 0


def test_memory_state_identical_after_run():
    image = _instrumented("sor")
    batched, _ = coalesce_analysis_calls(image)
    m_ref, m_bat = Machine(image), Machine(batched)
    m_ref.run(8, 8, 2)
    m_bat.run(8, 8, 2)
    assert m_ref.memory == m_bat.memory


def test_ranged_dispatch_without_range_hook_expands_per_word():
    """A hook without ``range_access`` still sees per-word events."""
    class Plain:
        def __init__(self):
            self.seen = []

        def __call__(self, addr, is_store, origin):
            self.seen.append((addr, is_store))

    fn = Function("k", [
        Instruction(Op.CALL, target=ANALYSIS_SYMBOL, srcs=("a0", "st"),
                    offset=0, imm=3),
        Instruction(Op.RET),
    ], Section.APP)
    image = BinaryImage("t")
    image.add(fn)
    image.entry = "k"
    hook = Plain()
    m = Machine(image, analysis_hook=hook)
    m.run(1000)
    assert hook.seen == [(1000, True), (1001, True), (1002, True)]
    assert m.analysis_calls == 1


def test_range_access_hook_receives_one_call():
    class Ranged(AnalysisCounter):
        def __init__(self):
            super().__init__()
            self.range_calls = []

        def range_access(self, addr, count, is_store, origin):
            self.range_calls.append((addr, count, is_store))
            super().range_access(addr, count, is_store, origin)

    fn = Function("k", [
        Instruction(Op.CALL, target=ANALYSIS_SYMBOL, srcs=("a0", "ld"),
                    offset=2, imm=4),
        Instruction(Op.RET),
    ], Section.APP)
    image = BinaryImage("t")
    image.add(fn)
    image.entry = "k"
    hook = Ranged()
    m = Machine(image, analysis_hook=hook)
    m.run(500)
    assert hook.range_calls == [(502, 4, False)]
    assert hook.events == [(502 + i, False) for i in range(4)]
    assert m.analysis_calls == 1


# ---------------------------------------------------------------------- #
# Soundness guards: what must NOT coalesce.
# ---------------------------------------------------------------------- #
def _call(base, kind, offset=0):
    return Instruction(Op.CALL, target=ANALYSIS_SYMBOL,
                       srcs=(base, kind), offset=offset)


def _image_of(instructions):
    image = BinaryImage("t")
    image.add(Function("k", list(instructions) + [Instruction(Op.RET)],
                       Section.APP))
    image.entry = "k"
    return image


def test_mixed_kinds_do_not_coalesce():
    image = _image_of([_call("a0", "ld", 0), _call("a0", "st", 1)])
    _batched, report = coalesce_analysis_calls(image)
    assert report.ranged_calls == 0


def test_same_address_does_not_coalesce():
    image = _image_of([_call("a0", "ld", 0), _call("a0", "ld", 0)])
    _batched, report = coalesce_analysis_calls(image)
    assert report.ranged_calls == 0


def test_descending_addresses_do_not_coalesce():
    image = _image_of([_call("a0", "ld", 1), _call("a0", "ld", 0)])
    _batched, report = coalesce_analysis_calls(image)
    assert report.ranged_calls == 0


def test_consecutive_offsets_coalesce():
    image = _image_of([_call("a0", "ld", 0), _call("a0", "ld", 1),
                       _call("a0", "ld", 2)])
    batched, report = coalesce_analysis_calls(image)
    assert report.ranged_calls == 1
    assert report.words_batched == 3
    calls = _analysis_calls(batched)
    assert len(calls) == 1 and calls[0].imm == 3


def test_label_breaks_run():
    image = _image_of([_call("a0", "ld", 0),
                       Instruction(Op.LABEL, target="L1"),
                       _call("a0", "ld", 1)])
    _batched, report = coalesce_analysis_calls(image)
    assert report.ranged_calls == 0


def test_intervening_call_breaks_run():
    image = _image_of([_call("a0", "ld", 0),
                       Instruction(Op.CALL, target="helper"),
                       _call("a0", "ld", 1)])
    _batched, report = coalesce_analysis_calls(image)
    assert report.ranged_calls == 0


def test_base_redefinition_breaks_run():
    # a0 is overwritten between the calls: address forms can't unify.
    image = _image_of([_call("a0", "ld", 0),
                       Instruction(Op.LI, reg="a0", imm=7),
                       _call("a0", "ld", 1)])
    _batched, report = coalesce_analysis_calls(image)
    assert report.ranged_calls == 0


def test_rederived_address_through_slot_coalesces():
    """The compiler's idiom: reload the pointer from its fp slot, add a
    constant, call.  Same slot, constants ascending -> coalesce."""
    seq = []
    for k in (0, 1):
        seq.append(Instruction(Op.LD, reg="t0", base="fp", offset=3))
        seq.append(Instruction(Op.LI, reg="t1", imm=k))
        seq.append(Instruction(Op.ADD, reg="t0", srcs=("t0", "t1")))
        seq.append(_call("t0", "st"))
        seq.append(Instruction(Op.ST, reg="zero", base="t0", offset=0))
    image = _image_of(seq)
    _batched, report = coalesce_analysis_calls(image)
    # The ST through t0 (computed address) bumps the memory epoch, which
    # retires the fp-slot atom: the second reload gets a fresh atom and
    # the run must NOT survive — the store could have aliased the slot.
    assert report.ranged_calls == 0


def test_rederived_address_without_aliasing_store_coalesces():
    seq = []
    for k in (0, 1):
        seq.append(Instruction(Op.LD, reg="t0", base="fp", offset=3))
        seq.append(Instruction(Op.LI, reg="t1", imm=k))
        seq.append(Instruction(Op.ADD, reg="t0", srcs=("t0", "t1")))
        seq.append(_call("t0", "ld"))
        seq.append(Instruction(Op.LD, reg="t2", base="t0", offset=0))
    image = _image_of(seq)
    _batched, report = coalesce_analysis_calls(image)
    assert report.ranged_calls == 1
    assert report.words_batched == 2


def test_store_to_feeding_slot_breaks_run():
    seq = [Instruction(Op.LD, reg="t0", base="fp", offset=3),
           _call("t0", "ld"),
           Instruction(Op.ST, reg="t9", base="fp", offset=3),  # retire slot
           Instruction(Op.LD, reg="t0", base="fp", offset=3),
           Instruction(Op.LI, reg="t1", imm=1),
           Instruction(Op.ADD, reg="t0", srcs=("t0", "t1")),
           _call("t0", "ld")]
    image = _image_of(seq)
    _batched, report = coalesce_analysis_calls(image)
    assert report.ranged_calls == 0
