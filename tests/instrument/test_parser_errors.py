"""Negative-syntax table: every parse failure must carry the source
line, the column, and the offending token.

One table, many broken programs — the error-reporting sweep's contract
is uniform: ``CompileError`` whose message starts ``line L, col C:`` and
ends with the offending token in quotes, so a kernel author can find
the typo without reading the parser."""

import re

import pytest

from repro.errors import CompileError
from repro.instrument.parser import parse_kernel, tokenize

#: (source, expected line, message substring, offending token substring)
BAD_PROGRAMS = [
    # -- malformed declarations ---------------------------------------- #
    ("func main( { return 0; }", 1, "expected", "{"),
    ("func main() { local ; }", 1, "expected", ";"),
    ("func main() { local x; local x; return 0; }", 1, "duplicate", "x"),
    ("func main(a, a) { return 0; }", 1, "duplicate", "a"),
    ("func main() { array a[]; }", 1, "expected", "]"),
    ("func main() {\n  static g;\n}", 2, "static", "static"),
    # -- undeclared / unknown names ------------------------------------ #
    ("func main() { return x; }", 1, "undeclared", "x"),
    ("func main() {\n  y = 1;\n  return 0;\n}", 2, "undeclared", "y"),
    ("func main() { local p: Missing; return 0; }", 1,
     "unknown struct", "Missing"),
    ("func main() { return new Missing; }", 1, "unknown struct", "Missing"),
    ("func main() { local x; return &q; }", 1, "address", "q"),
    # -- struct typing -------------------------------------------------- #
    ("struct P { a; }\nfunc main() {\n  local x;\n  x = 1;\n  return x.a;\n}",
     5, "no declared struct type", "."),
    ("struct P { a; }\nfunc main() {\n  local p: P;\n  p = new P;\n"
     "  return p.zz;\n}", 5, "no field", "zz"),
    ("struct P { a; a; }\nfunc main() { return 0; }", 1, "duplicate", "a"),
    # -- statements ----------------------------------------------------- #
    ("func main() { 1 + 2 = 3; }", 1, "assign", "1"),
    ("func main() { if 1 { return 0; } }", 1, "expected", "1"),
    ("func main() { for (i = 0; i < 3; i -= 1) {} }", 1, "undeclared", "i"),
    ("func main() { local i; for (i = 0; i < 3; i *= 1) {} }", 1,
     "expected", "*"),
    ("func main() { return 0 }", 1, "expected", "}"),
    ("func main() { delete ; }", 1, "unexpected", ";"),
    # -- expressions ---------------------------------------------------- #
    ("func main() { return (1 + ; }", 1, "unexpected", ";"),
    ("func main() { return 1 + + 2; }", 1, "unexpected", "+"),
    ("func main() { local a; return a[1; }", 1, "expected", ";"),
]


@pytest.mark.parametrize("src, line, needle, tok",
                         BAD_PROGRAMS,
                         ids=[f"case{i}" for i in range(len(BAD_PROGRAMS))])
def test_error_carries_location_and_token(src, line, needle, tok):
    with pytest.raises(CompileError) as err:
        parse_kernel(src)
    msg = str(err.value)
    m = re.match(r"^line (\d+), col (\d+): ", msg)
    assert m, f"no location prefix in: {msg}"
    assert int(m.group(1)) == line, msg
    assert needle in msg, msg
    assert repr(tok)[1:-1] in msg or f"{tok!r}" in msg, msg


def test_columns_point_into_the_line():
    src = "func main() {\n  return      oops;\n}"
    with pytest.raises(CompileError) as err:
        parse_kernel(src)
    m = re.match(r"^line 2, col (\d+)", str(err.value))
    assert m
    col = int(m.group(1))
    assert src.splitlines()[1][col - 1:col + 3] == "oops"


def test_tokenizer_tracks_lines_and_columns():
    toks = tokenize("func f() {\n  local xyz;\n}")
    xyz = next(t for t in toks if t.value == "xyz")
    assert xyz.line == 2
    assert xyz.col == 9
    kind, value, line = xyz  # 3-tuple unpacking stays supported
    assert (kind, value, line) == ("name", "xyz", 2)


def test_eof_error_is_located():
    with pytest.raises(CompileError) as err:
        parse_kernel("func main() { return 1 +")
    assert re.match(r"^line \d+, col \d+: ", str(err.value))
