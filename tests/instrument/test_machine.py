"""The mini-ISA interpreter, including instrumented execution."""

import pytest

from repro.errors import InstrumentationError
from repro.instrument import kernel_ast as K
from repro.instrument.atom import AtomRewriter
from repro.instrument.compiler import compile_kernel
from repro.instrument.linker import link
from repro.instrument.machine import (HEAP_BASE, AnalysisCounter, Machine)


def build(functions, statics=()):
    prog = K.KernelProgram("t", statics=statics, functions=functions)
    return link("t", [compile_kernel(prog)], libraries=[])


def test_arithmetic_and_return():
    img = build([K.KernelFunction(
        "main", params=("a", "b"),
        body=[K.Return(K.Bin("+", K.Bin("*", K.Param("a"), K.Param("b")),
                             K.Const(7)))])])
    assert Machine(img).run(6, 7) == 49


def test_loop_sum():
    img = build([K.KernelFunction(
        "main", params=("n",), locals_=("i", "s"),
        body=[K.Assign(K.Local("s"), K.Const(0)),
              K.For(K.Local("i"), K.Const(0), K.Param("n"),
                    [K.Assign(K.Local("s"),
                              K.Bin("+", K.Local("s"), K.Local("i")))]),
              K.Return(K.Local("s"))])])
    assert Machine(img).run(10) == 45


def test_if_else():
    img = build([K.KernelFunction(
        "main", params=("x",),
        body=[K.If(K.Bin("<", K.Param("x"), K.Const(10)),
                   [K.Return(K.Const(1))],
                   [K.Return(K.Const(2))])])])
    m = Machine(img)
    assert m.run(5) == 1
    assert Machine(img).run(50) == 2


def test_while_loop():
    img = build([K.KernelFunction(
        "main", params=("n",), locals_=("c",),
        body=[K.Assign(K.Local("c"), K.Const(0)),
              K.While(K.Bin("<", K.Local("c"), K.Param("n")),
                      [K.Assign(K.Local("c"),
                                K.Bin("+", K.Local("c"), K.Const(3)))]),
              K.Return(K.Local("c"))])])
    assert Machine(img).run(10) == 12


def test_function_calls_and_recursion_free_chain():
    img = build([
        K.KernelFunction("double", params=("x",),
                         body=[K.Return(K.Bin("*", K.Param("x"), K.Const(2)))]),
        K.KernelFunction("main", params=("x",),
                         body=[K.Return(K.CallExpr(
                             "double", (K.CallExpr("double", (K.Param("x"),)),)))]),
    ])
    assert Machine(img).run(3) == 12


def test_malloc_and_heap_access():
    img = build([K.KernelFunction(
        "main", locals_=("p",),
        body=[K.Assign(K.Local("p"), K.CallExpr("malloc", (K.Const(4),))),
              K.Assign(K.Deref(K.Local("p"), K.Const(2)), K.Const(99)),
              K.Return(K.Deref(K.Local("p"), K.Const(2)))])])
    m = Machine(img)
    assert m.run() == 99
    assert m.heap_next > HEAP_BASE


def test_statics_persist_across_calls():
    img = build([
        K.KernelFunction("bump", body=[
            K.Assign(K.Static("g"), K.Bin("+", K.Static("g"), K.Const(1)))]),
        K.KernelFunction("main", body=[
            K.ExprStmt(K.CallExpr("bump")),
            K.ExprStmt(K.CallExpr("bump")),
            K.Return(K.Static("g"))]),
    ], statics=("g",))
    assert Machine(img).run() == 2


def test_unknown_call_is_opaque_zero():
    img = build([K.KernelFunction(
        "main", body=[K.Return(K.CallExpr("printf", (K.Const(1),)))])])
    assert Machine(img).run() == 0


def test_custom_intrinsic():
    img = build([K.KernelFunction(
        "main", body=[K.Return(K.CallExpr("magic", ()))])])
    m = Machine(img)
    m.intrinsic("magic", lambda *a: 1234)
    assert m.run() == 1234


def test_step_limit():
    img = build([K.KernelFunction(
        "main", locals_=("c",),
        body=[K.Assign(K.Local("c"), K.Const(1)),
              K.While(K.Bin("<", K.Const(0), K.Local("c")),
                      [K.Assign(K.Local("c"), K.Const(1))])])])
    with pytest.raises(InstrumentationError):
        Machine(img, max_steps=5000).run()


def test_instrumented_binary_fires_analysis_calls():
    img = build([K.KernelFunction(
        "main", locals_=("p", "i"),
        body=[K.Assign(K.Local("p"), K.CallExpr("malloc", (K.Const(8),))),
              K.For(K.Local("i"), K.Const(0), K.Const(8),
                    [K.Assign(K.Deref(K.Local("p"), K.Local("i")),
                              K.Local("i"))]),
              K.Return(K.Const(0))])])
    instrumented = AtomRewriter().instrument(img)
    hook = AnalysisCounter()
    m = Machine(instrumented, analysis_hook=hook)
    m.run()
    assert m.analysis_calls == 8
    assert hook.shared == 8       # heap addresses classify as shared
    assert hook.private == 0
    # Addresses and access kinds recorded.
    assert all(addr >= HEAP_BASE and is_store for addr, is_store in hook.events)


def test_uninstrumented_stack_accesses_silent():
    img = build([K.KernelFunction(
        "main", locals_=("a", "b"),
        body=[K.Assign(K.Local("a"), K.Const(1)),
              K.Assign(K.Local("b"), K.Local("a")),
              K.Return(K.Local("b"))])])
    instrumented = AtomRewriter().instrument(img)
    m = Machine(instrumented)
    assert m.run() == 1
    assert m.analysis_calls == 0
