"""Linear-scan register allocation: fewer loads/stores, same semantics.

The contract of :mod:`repro.instrument.regalloc`: ``regalloc="linear"``
register-homes scalars and binds temporaries by liveness, so every
kernel's generated code carries measurably fewer loads/stores than the
naive single-pass codegen — while computing the same values, and while
the default ``"naive"`` mode stays byte-identical to what the deleted
``_RegPool`` compiler always produced (the paper tables depend on it).
"""

import pytest

from repro.errors import CompileError
from repro.instrument.binaries import APP_NAMES, binary_for
from repro.instrument.compiler import compile_kernel
from repro.instrument.isa import Function, Instruction, Op, Section
from repro.instrument.kernels import KERNEL_PROGRAMS
from repro.instrument.linker import link
from repro.instrument.machine import Machine
from repro.instrument.parser import compile_source, parse_kernel
from repro.instrument.regalloc import (ALLOCATABLE, AllocationReport,
                                       NaiveBinding, bind_registers,
                                       live_intervals)

ALL_KERNELS = list(APP_NAMES) + ["lu"]


def _app_mem_ops(image):
    return sum(1 for fn in image.functions.values()
               if fn.section is Section.APP
               for ins in fn.instructions if ins.is_memory)


def _run_source(src, mode, *args):
    obj = compile_source(src, "t", regalloc=mode)
    img = link("t", [obj], libraries=[], include_cvm=False)
    return Machine(img).run(*args)


# ---------------------------------------------------------------------- #
# The optimization claim.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("app", ALL_KERNELS)
def test_linear_reduces_loads_stores(app):
    naive = binary_for(app)
    linear = binary_for(app, regalloc="linear")
    assert _app_mem_ops(linear) < _app_mem_ops(naive)
    assert linear.load_store_count() < naive.load_store_count()


@pytest.mark.parametrize("app", ALL_KERNELS)
def test_linear_same_dynamic_result(app):
    naive = Machine(binary_for(app))
    linear = Machine(binary_for(app, regalloc="linear"))
    assert naive.run() == linear.run()


def test_default_mode_is_naive():
    """The Table 2 pipeline stays pinned to the unoptimized codegen."""
    prog = KERNEL_PROGRAMS["sor"]()
    default = compile_kernel(prog)
    explicit = compile_kernel(prog, regalloc="naive")
    for a, b in zip(default.functions, explicit.functions):
        assert a.instructions == b.instructions
        assert a.frame_words == b.frame_words


def test_unknown_mode_rejected():
    with pytest.raises(CompileError, match="regalloc"):
        compile_kernel(KERNEL_PROGRAMS["sor"](), regalloc="ssa")


# ---------------------------------------------------------------------- #
# Semantic equivalence under register pressure (forced spills).
# ---------------------------------------------------------------------- #
SPILL_SRC = """
func main() {
  local a; local b; local c; local d; local e; local f; local g;
  local h; local i; local j; local k; local l; local m; local n;
  a = 1; b = 2; c = 3; d = 4; e = 5; f = 6; g = 7;
  h = 8; i = 9; j = 10; k = 11; l = 12; m = 13; n = 14;
  return a + b * c + d * e + f * g + h * i + j * k + l * m + n
       + (a + b) * (c + d) * (e + f) + (g + h) * (i + j);
}
"""
SPILL_EXPECT = (1 + 2 * 3 + 4 * 5 + 6 * 7 + 8 * 9 + 10 * 11 + 12 * 13 + 14
                + (1 + 2) * (3 + 4) * (5 + 6) + (7 + 8) * (9 + 10))


def test_spill_kernel_same_result_both_modes():
    """14 simultaneously-live locals > 10 allocatable registers: linear
    mode must spill and still agree with the naive answer."""
    assert _run_source(SPILL_SRC, "naive") == SPILL_EXPECT
    assert _run_source(SPILL_SRC, "linear") == SPILL_EXPECT


def test_spill_kernel_actually_spills():
    prog = parse_kernel(SPILL_SRC, "spill")
    from repro.instrument.compiler import _FunctionCompiler
    fc = _FunctionCompiler(prog, prog.functions[0], {}, regalloc="linear")
    vfn = fc.compile()
    _bound, report = bind_registers(vfn)
    assert report.spilled > 0
    assert report.spill_slots > 0


def test_spill_code_is_stack_private():
    """Spill loads/stores are fp-relative, so the static filter never
    instruments them — allocation cannot inflate analysis calls."""
    from repro.instrument.atom import AccessClass, classify
    obj = compile_source(SPILL_SRC, "spill", regalloc="linear")
    for fn in obj.functions:
        for ins in fn.instructions:
            if ins.is_memory:
                assert classify(fn, ins) is AccessClass.STACK


def test_loop_counter_register_homed():
    """The central payoff: a loop induction variable compiles to zero
    per-iteration frame traffic in linear mode."""
    src = """
    func main(n) {
      local i; local s;
      s = 0;
      for (i = 0; i < n; i += 1) { s = s + i; }
      return s;
    }
    """
    naive = compile_source(src, "loop", regalloc="naive")
    linear = compile_source(src, "loop", regalloc="linear")
    n_mem = sum(1 for f in naive.functions
                for i in f.instructions if i.is_memory)
    l_mem = sum(1 for f in linear.functions
                for i in f.instructions if i.is_memory)
    assert l_mem == 0 and n_mem > 0
    assert _run_source(src, "naive", 10) == _run_source(src, "linear", 10) \
        == 45


# ---------------------------------------------------------------------- #
# The naive binding keeps the exhaustion contract, now with location.
# ---------------------------------------------------------------------- #
def test_naive_exhaustion_names_function_and_line():
    deep = "1"
    for k in range(2, 16):
        deep = f"{k} + ({deep})"
    src = f"func main() {{\n  return {deep};\n}}\n"
    with pytest.raises(CompileError) as err:
        compile_source(src, "deep", regalloc="naive")
    msg = str(err.value)
    assert "expression too deep" in msg
    assert "'main'" in msg
    assert "line 2" in msg


def test_linear_mode_compiles_deep_expressions():
    deep = "1"
    for k in range(2, 16):
        deep = f"{k} + ({deep})"
    src = f"func main() {{\n  return {deep};\n}}\n"
    assert _run_source(src, "linear") == sum(range(1, 16))


def test_naive_binding_hands_out_t0_first():
    b = NaiveBinding(lambda: ("f", 0))
    assert b.take() == "t0"
    assert b.take() == "t1"
    b.give("t0")
    assert b.take() == "t0"  # LIFO reuse, like the old _RegPool


# ---------------------------------------------------------------------- #
# Allocator internals.
# ---------------------------------------------------------------------- #
def _vcode(*ins):
    return Function("v", list(ins), Section.APP, frame_words=0)


def test_live_intervals_basic():
    code = [
        Instruction(Op.LI, reg="%0", imm=1),
        Instruction(Op.LI, reg="%1", imm=2),
        Instruction(Op.ADD, reg="%2", srcs=("%0", "%1")),
        Instruction(Op.MOV, reg="v0", srcs=("%2",)),
        Instruction(Op.RET),
    ]
    ivs = {iv.vreg: (iv.start, iv.end) for iv in live_intervals(code)}
    assert ivs["%0"] == (0, 2)
    assert ivs["%1"] == (1, 2)
    assert ivs["%2"] == (2, 3)


def test_bind_registers_passthrough_without_vregs():
    fn = _vcode(Instruction(Op.LI, reg="t0", imm=1), Instruction(Op.RET))
    bound, report = bind_registers(fn)
    assert bound is fn
    assert report == AllocationReport("v", vregs=0)


def test_bind_registers_spills_beyond_register_file():
    n = len(ALLOCATABLE) + 3
    code = [Instruction(Op.LI, reg=f"%{i}", imm=i) for i in range(n)]
    acc = "%0"
    for i in range(1, n):
        code.append(Instruction(Op.ADD, reg=f"%{n + i}",
                                srcs=(acc, f"%{i}")))
        acc = f"%{n + i}"
    code.append(Instruction(Op.MOV, reg="v0", srcs=(acc,)))
    code.append(Instruction(Op.RET))
    bound, report = bind_registers(_vcode(*code))
    assert report.spilled >= 3
    assert bound.frame_words == report.spill_slots
    m = Machine(link("t", _obj_of(bound), libraries=[], include_cvm=False))
    assert m.run() == sum(range(n))
    for ins in bound.instructions:
        for r in (ins.reg, ins.base, *ins.srcs):
            assert not (r or "").startswith("%")


def _obj_of(fn):
    from repro.instrument.isa import ObjectFile
    obj = ObjectFile("t")
    obj.add(Function("main", list(fn.instructions), Section.APP,
                     frame_words=fn.frame_words))
    return [obj]
