"""The reliable channel: fragmentation, retransmit charging, degradation."""

import pytest

from repro.errors import MessageTooLargeError, RetryExhaustedError
from repro.net.faults import FaultPlan, FaultRates
from repro.net.message import HEADER_BYTES
from repro.net.reliable import ACK_BODY_BYTES, ReliableChannel
from repro.net.transport import Transport
from repro.sim.clock import VirtualClock
from repro.sim.costmodel import CostCategory, CostModel


def make_channel(plan=None, max_datagram=64 * 1024, **kw):
    transport = Transport(CostModel(), max_datagram=max_datagram)
    plan = plan or FaultPlan.uniform(loss_rate=0.1, seed=0)
    return ReliableChannel(transport, plan, **kw)


def test_fault_free_send_costs_message_plus_ack():
    ch = make_channel(FaultPlan(by_tag={"never": FaultRates(drop=0.5)}))
    clock = VirtualClock()
    msg = ch.send("ping", 0, 1, {"x": 1}, body_bytes=100, src_clock=clock)
    cm = ch.cost_model
    expected = (cm.msg_latency + cm.cycles_per_byte * (100 + HEADER_BYTES)
                + cm.msg_latency
                + cm.cycles_per_byte * (ACK_BODY_BYTES + HEADER_BYTES))
    assert clock.now == pytest.approx(expected)
    assert msg.payload == {"x": 1}
    assert msg.nbytes == 100 + HEADER_BYTES
    assert ch.stats.acks == 1
    assert ch.stats.retransmits == 0
    # The data datagram is charged to its own category; only the ack
    # lands under RETRANSMIT.
    assert clock.ledger.totals[CostCategory.RETRANSMIT] == pytest.approx(
        cm.msg_latency + cm.cycles_per_byte * (ACK_BODY_BYTES + HEADER_BYTES))


def test_drops_charge_retransmit_category_and_counters():
    ch = make_channel(FaultPlan.uniform(loss_rate=0.4, seed=1),
                      retry_budget=50)
    clock = VirtualClock()
    for seq in range(30):
        ch.send("sync", 0, 1, None, 64, clock)
    stats = ch.stats
    assert stats.drops > 0
    assert stats.retransmits == stats.drops  # every drop was retried
    assert clock.ledger.totals[CostCategory.RETRANSMIT] > 0
    # Base category only carries the first attempts.
    cm = ch.cost_model
    first_attempt = cm.msg_latency + cm.cycles_per_byte * (64 + HEADER_BYTES)
    assert clock.ledger.totals[CostCategory.BASE] == pytest.approx(
        30 * first_attempt)


def test_retry_budget_exhaustion_raises():
    ch = make_channel(FaultPlan.uniform(loss_rate=0.999999, seed=2),
                      retry_budget=3)
    clock = VirtualClock()
    with pytest.raises(RetryExhaustedError) as exc:
        ch.send("doomed", 0, 1, None, 10, clock)
    assert exc.value.tag == "doomed"
    assert exc.value.attempts == 3
    assert ch.stats.retry_failures == 1


def test_backoff_is_exponential_and_capped():
    ch = make_channel(FaultPlan.uniform(loss_rate=0.999999, seed=2),
                      retry_budget=6, timeout_cycles=1000,
                      max_timeout_cycles=4000)
    clock = VirtualClock()
    with pytest.raises(RetryExhaustedError):
        ch.send("doomed", 0, 1, None, 10, clock)
    cm = ch.cost_model
    wire = cm.msg_latency + cm.cycles_per_byte * (10 + HEADER_BYTES)
    # 5 timeouts: 1000, 2000, 4000 (cap), 4000, 4000; 6 transmissions.
    assert clock.now == pytest.approx(6 * wire + 1000 + 2000 + 3 * 4000)


def test_duplicates_counted_and_suppressed():
    ch = make_channel(FaultPlan.uniform(duplicate_rate=0.5, seed=3))
    clock = VirtualClock()
    for _ in range(40):
        ch.send("sync", 0, 1, None, 16, clock)
    assert ch.stats.duplicates > 0
    assert ch.stats.drops == 0


def test_reorder_delays_arrival():
    loud = make_channel(FaultPlan.uniform(reorder_rate=0.999, seed=4))
    quiet = make_channel(FaultPlan(by_tag={"x": FaultRates(drop=0.1)}))
    c1, c2 = VirtualClock(), VirtualClock()
    late = loud.send("sync", 0, 1, None, 16, c1)
    on_time = quiet.send("sync", 0, 1, None, 16, c2)
    assert loud.stats.reorders > 0
    assert late.arrival_time > on_time.arrival_time


def test_fragmentation_one_header_per_fragment():
    ch = make_channel(FaultPlan(by_tag={"never": FaultRates(drop=0.5)}),
                      max_datagram=256)
    clock = VirtualClock()
    msg = ch.send("big", 0, 1, None, body_bytes=1000, src_clock=clock,
                  fragmentable=True)
    capacity = 256 - HEADER_BYTES
    nfrag = -(-1000 // capacity)
    assert msg.nfragments == nfrag
    assert msg.nbytes == 1000 + nfrag * HEADER_BYTES
    assert ch.stats.messages_by_tag["big"] == nfrag


def test_oversize_unfragmentable_still_raises():
    ch = make_channel(max_datagram=128)
    with pytest.raises(MessageTooLargeError):
        ch.send("big", 0, 1, None, body_bytes=1000,
                src_clock=VirtualClock())


def test_channel_seqnos_are_per_direction():
    ch = make_channel()
    clock = VirtualClock()
    a = ch.send("t", 0, 1, None, 8, clock)
    b = ch.send("t", 0, 1, None, 8, clock)
    c = ch.send("t", 1, 0, None, 8, clock)
    assert (a.seqno, b.seqno, c.seqno) == (0, 1, 0)


def test_channel_send_is_deterministic():
    def run():
        ch = make_channel(FaultPlan.uniform(loss_rate=0.3, duplicate_rate=0.1,
                                            reorder_rate=0.1, seed=11),
                          retry_budget=50)
        clock = VirtualClock()
        arrivals = [ch.send("sync", 0, 1, None, 32, clock).arrival_time
                    for _ in range(25)]
        return arrivals, ch.stats.fault_summary(), clock.now

    assert run() == run()
