"""Simulated transport: cost charging, size limits, statistics."""

import pytest

from repro.errors import MessageTooLargeError
from repro.net.message import HEADER_BYTES
from repro.net.transport import Transport
from repro.sim.clock import VirtualClock
from repro.sim.costmodel import CostCategory, CostModel


def make_transport(**kw):
    return Transport(CostModel(), **kw)


def test_send_charges_sender_and_sets_arrival():
    t = make_transport()
    clock = VirtualClock()
    msg = t.send("ping", 0, 1, {"x": 1}, body_bytes=100, src_clock=clock)
    expected = t.cost_model.msg_latency + \
        t.cost_model.cycles_per_byte * (100 + HEADER_BYTES)
    assert clock.now == pytest.approx(expected)
    assert msg.arrival_time == pytest.approx(clock.now)
    assert msg.nbytes == 100 + HEADER_BYTES
    assert msg.payload == {"x": 1}


def test_send_category_tagging():
    t = make_transport()
    clock = VirtualClock()
    t.send("bitmap_reply", 0, 1, None, 10, clock,
           category=CostCategory.BITMAPS)
    assert clock.ledger.totals[CostCategory.BITMAPS] > 0
    assert clock.ledger.base == 0


def test_oversize_message_raises():
    t = make_transport(max_datagram=256)
    clock = VirtualClock()
    with pytest.raises(MessageTooLargeError) as exc:
        t.send("big", 0, 1, None, body_bytes=1000, src_clock=clock)
    assert exc.value.limit == 256
    assert exc.value.tag == "big"


def test_oversize_fragmentable_charges_multiple_latencies():
    t = make_transport(max_datagram=256)
    c1, c2 = VirtualClock(), VirtualClock()
    t.send("small", 0, 1, None, body_bytes=100, src_clock=c1,
           fragmentable=True)
    t.send("big", 0, 1, None, body_bytes=1000, src_clock=c2,
           fragmentable=True)
    # Big message pays per-fragment latency: more than byte-proportional.
    per_byte = t.cost_model.cycles_per_byte
    extra_latency = c2.now - c1.now - per_byte * 900
    assert extra_latency >= t.cost_model.msg_latency * 3


def test_fragments_each_carry_their_own_header():
    # Every UDP fragment is a datagram with its own header: wire bytes,
    # cycle charges and message counts must all scale with the fragment
    # count, not assume one header per logical message.
    t = make_transport(max_datagram=256)
    clock = VirtualClock()
    capacity = 256 - HEADER_BYTES
    body = 1000
    nfrag = -(-body // capacity)  # ceil
    msg = t.send("big", 0, 1, None, body_bytes=body, src_clock=clock,
                 fragmentable=True)
    assert msg.nfragments == nfrag
    assert msg.nbytes == body + nfrag * HEADER_BYTES
    assert t.stats.messages_by_tag["big"] == nfrag
    assert t.stats.bytes_by_tag["big"] == msg.nbytes
    expected_cycles = (t.cost_model.cycles_per_byte * msg.nbytes
                       + t.cost_model.msg_latency * nfrag)
    assert clock.now == pytest.approx(expected_cycles)


def test_single_fragment_accounting_unchanged():
    # A message that fits one datagram is accounted exactly as before the
    # per-fragment-header fix: one header, one latency, one stats entry.
    t = make_transport(max_datagram=256)
    clock = VirtualClock()
    msg = t.send("fits", 0, 1, None, body_bytes=200, src_clock=clock,
                 fragmentable=True)
    assert msg.nfragments == 1
    assert msg.nbytes == 200 + HEADER_BYTES
    assert t.stats.messages_by_tag["fits"] == 1


def test_body_exactly_filling_fragments():
    t = make_transport(max_datagram=128)
    capacity = 128 - HEADER_BYTES
    clock = VirtualClock()
    msg = t.send("exact", 0, 1, None, body_bytes=3 * capacity,
                 src_clock=clock, fragmentable=True)
    assert msg.nfragments == 3
    assert msg.nbytes == 3 * 128


def test_max_datagram_must_exceed_header():
    with pytest.raises(ValueError):
        make_transport(max_datagram=HEADER_BYTES)


def test_deliver_advances_receiver_clock():
    t = make_transport()
    src, dst = VirtualClock(), VirtualClock()
    src.advance(5000)
    msg = t.send("data", 0, 1, "payload", 50, src)
    assert t.deliver(msg, dst) == "payload"
    assert dst.now == pytest.approx(msg.arrival_time)
    # A receiver already past the arrival time is unaffected.
    late = VirtualClock()
    late.advance(10 * msg.arrival_time)
    t.deliver(msg, late)
    assert late.now == 10 * msg.arrival_time


def test_stats_recorded_per_tag_and_pair():
    t = make_transport()
    clock = VirtualClock()
    t.send("a", 0, 1, None, 10, clock)
    t.send("a", 0, 1, None, 10, clock)
    t.send("b", 1, 2, None, 20, clock)
    s = t.stats
    assert s.messages_by_tag["a"] == 2
    assert s.messages_by_tag["b"] == 1
    assert s.total_messages == 3
    assert s.bytes_by_pair[(0, 1)] == 2 * (10 + HEADER_BYTES)


def test_message_tracing_disabled_by_default():
    t = make_transport()
    t.send("a", 0, 1, None, 10, VirtualClock())
    assert t.messages == []


def test_message_tracing_retains_order_and_fields():
    t = Transport(CostModel(), trace=True)
    clock = VirtualClock()
    t.send("first", 0, 1, {"k": 1}, 10, clock)
    t.send("second", 1, 0, None, 20, clock)
    assert [m.tag for m in t.messages] == ["first", "second"]
    assert t.messages[0].payload == {"k": 1}
    assert t.messages[0].arrival_time <= t.messages[1].send_time


def test_system_level_message_trace():
    from repro.dsm.config import DsmConfig
    from repro.dsm.cvm import CVM

    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 0:
            env.store(x, 1)
        env.barrier()
        env.load(x)

    cfg = DsmConfig(nprocs=2, page_size_words=16, segment_words=1024,
                    trace_messages=True)
    system = CVM(cfg)
    system.run(app)
    tags = {m.tag for m in system.transport.messages}
    assert "barrier_arrival" in tags and "barrier_release" in tags
    assert "page_reply" in tags
