"""Traffic statistics and the Table 3 message-overhead fraction."""

from repro.net.stats import TrafficStats


def test_record_and_totals():
    s = TrafficStats()
    s.record("x", 0, 1, 100)
    s.record("x", 1, 0, 50)
    s.record("y", 0, 2, 25)
    assert s.total_messages == 3
    assert s.total_bytes == 175
    assert s.bytes_by_tag["x"] == 150


def test_overhead_fraction_zero_without_traffic():
    assert TrafficStats().message_overhead_fraction() == 0.0


def test_overhead_fraction_combines_notices_and_bitmap_round():
    s = TrafficStats()
    s.record("sync", 0, 1, 800)
    s.record("bitmap_reply", 1, 0, 200)
    s.add_read_notice_bytes(100)
    s.add_bitmap_round_bytes(200)
    assert s.message_overhead_fraction() == (100 + 200) / 1000


def test_summary_keys():
    s = TrafficStats()
    s.record("t", 0, 1, 10)
    s.add_read_notice_bytes(3)
    out = s.summary()
    assert out == {"messages": 1, "bytes": 10,
                   "read_notice_bytes": 3, "bitmap_round_bytes": 0}
