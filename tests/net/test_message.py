"""Wire-size accounting."""

import pytest

from repro.net.message import HEADER_BYTES, INT_BYTES, Message, WireSizer


def test_sizer_primitives():
    s = WireSizer(nprocs=8, page_size_words=64)
    assert s.ints() == INT_BYTES
    assert s.ints(3) == 3 * INT_BYTES
    assert s.vector_clock() == 8 * INT_BYTES
    assert s.bitmap() == 64 // 8
    assert s.page_data() == 64 * 8


def test_notice_list_sizes():
    s = WireSizer(nprocs=4, page_size_words=64)
    assert s.notice_list(0) == INT_BYTES           # just the count
    assert s.notice_list(5) == 6 * INT_BYTES
    # Read and write notices are the same size per entry (paper §5.3).
    assert s.notice_list(7) - s.notice_list(6) == INT_BYTES


def test_interval_record_size_components():
    s = WireSizer(nprocs=4, page_size_words=64)
    base = s.interval_record(0, 0)
    assert base == s.ints(2) + s.vector_clock() + 2 * s.notice_list(0)
    with_notices = s.interval_record(3, 5)
    assert with_notices == base + 8 * INT_BYTES


def test_diff_size():
    s = WireSizer(nprocs=2, page_size_words=64)
    assert s.diff(0) == INT_BYTES
    assert s.diff(4) == INT_BYTES + 4 * (INT_BYTES + 8)


def test_message_wire_size_includes_header():
    s = WireSizer(nprocs=2, page_size_words=64)
    assert s.message(100) == HEADER_BYTES + 100


def test_sizer_validation():
    with pytest.raises(ValueError):
        WireSizer(0, 64)
    with pytest.raises(ValueError):
        WireSizer(4, 60)  # not a multiple of 8


def test_message_smaller_than_header_rejected():
    with pytest.raises(ValueError):
        Message("t", 0, 1, None, nbytes=HEADER_BYTES - 1)


def test_transport_assigns_increasing_seqnos():
    # Seqnos are assigned per-transport at send() time; a directly
    # constructed Message carries the neutral default.
    from repro.net.transport import Transport
    from repro.sim.clock import VirtualClock
    from repro.sim.costmodel import CostModel
    assert Message("t", 0, 1, None, nbytes=HEADER_BYTES).seqno == 0
    t = Transport(CostModel())
    clock = VirtualClock()
    a = t.send("t", 0, 1, None, 10, clock)
    b = t.send("t", 0, 1, None, 10, clock)
    assert (a.seqno, b.seqno) == (0, 1)


def test_seqnos_are_per_transport_not_per_process():
    # Two transports in one interpreter must produce identical seqno
    # streams — back-to-back runs (equivalence suites, benchmarks) would
    # otherwise diverge and break record/replay determinism.
    from repro.net.transport import Transport
    from repro.sim.clock import VirtualClock
    from repro.sim.costmodel import CostModel

    def seqnos():
        t = Transport(CostModel())
        clock = VirtualClock()
        return [t.send("x", 0, 1, None, 10, clock).seqno for _ in range(4)]

    assert seqnos() == seqnos() == [0, 1, 2, 3]
