"""Deterministic fault injection: schedules are a pure function of the
seed and the datagram identity."""

import pytest

from repro.net.faults import (FaultInjector, FaultPlan, FaultRates,
                              plan_from_rates)


def decisions(plan, n=200, tag="sync"):
    inj = FaultInjector(plan)
    return [inj.decide(tag, 0, 1, seq, 0, 1) for seq in range(n)]


def test_same_seed_same_schedule():
    plan = FaultPlan.uniform(loss_rate=0.2, duplicate_rate=0.1,
                             reorder_rate=0.1, seed=42)
    assert decisions(plan) == decisions(plan)


def test_schedule_is_call_order_independent():
    # Hash-derived decisions depend only on the datagram identity, not on
    # how many decisions were asked before — interleaving-proof.
    plan = FaultPlan.uniform(loss_rate=0.3, seed=9)
    inj_a, inj_b = FaultInjector(plan), FaultInjector(plan)
    forward = [inj_a.decide("t", 0, 1, seq, 0, 1) for seq in range(50)]
    backward = [inj_b.decide("t", 0, 1, seq, 0, 1)
                for seq in reversed(range(50))]
    assert forward == list(reversed(backward))


def test_different_seeds_differ():
    a = decisions(FaultPlan.uniform(loss_rate=0.3, seed=1))
    b = decisions(FaultPlan.uniform(loss_rate=0.3, seed=2))
    assert a != b


def test_retransmission_attempts_roll_fresh_dice():
    plan = FaultPlan.uniform(loss_rate=0.5, seed=3)
    inj = FaultInjector(plan)
    fates = [inj.decide("t", 0, 1, 0, 0, attempt).drop
             for attempt in range(1, 40)]
    assert True in fates and False in fates


def test_rates_are_approximately_respected():
    plan = FaultPlan.uniform(loss_rate=0.25, seed=0)
    drops = sum(d.drop for d in decisions(plan, n=2000))
    assert 0.18 < drops / 2000 < 0.32


def test_dropped_datagram_is_not_also_duplicated():
    plan = FaultPlan.uniform(loss_rate=0.5, duplicate_rate=0.9, seed=5)
    for d in decisions(plan, n=500):
        if d.drop:
            assert not d.duplicate and not d.reorder


def test_per_tag_overrides():
    plan = FaultPlan(by_tag={"bitmap_reply": FaultRates(drop=0.9)}, seed=1)
    inj = FaultInjector(plan)
    assert not any(inj.decide("lock_grant", 0, 1, s, 0, 1).drop
                   for s in range(100))
    dropped = sum(inj.decide("bitmap_reply", 0, 1, s, 0, 1).drop
                  for s in range(100))
    assert dropped > 70


def test_rate_validation():
    with pytest.raises(ValueError):
        FaultRates(drop=1.0)
    with pytest.raises(ValueError):
        FaultRates(duplicate=-0.1)


def test_plan_enabled_flag():
    assert not FaultPlan().enabled
    assert FaultPlan.uniform(loss_rate=0.01).enabled
    assert FaultPlan(by_tag={"x": FaultRates(reorder=0.5)}).enabled


def test_plan_from_rates_returns_none_when_all_zero():
    assert plan_from_rates(0.0, 0.0, 0.0, seed=7) is None
    plan = plan_from_rates(0.1, 0.0, 0.0, seed=7)
    assert plan is not None and plan.seed == 7
    assert plan.default.drop == 0.1
