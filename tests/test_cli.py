"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


def test_apps_lists_everything(capsys):
    rc, out = run_cli(capsys, "apps")
    assert rc == 0
    for name in ("fft", "sor", "tsp", "water", "queue_racy"):
        assert name in out


def test_run_racy_app(capsys):
    rc, out = run_cli(capsys, "run", "water", "--procs", "4")
    assert rc == 0
    assert "data race(s):" in out
    assert "water_poteng" in out
    assert "slowdown" in out


def test_run_clean_app(capsys):
    rc, out = run_cli(capsys, "run", "sor", "--procs", "2")
    assert rc == 0
    assert "no data races detected" in out


def test_run_queue_forces_three_procs(capsys):
    rc, out = run_cli(capsys, "run", "queue_racy", "--procs", "8")
    assert rc == 0
    assert "3 simulated processes" in out


def test_run_mw_protocol(capsys):
    rc, out = run_cli(capsys, "run", "water", "--procs", "2",
                      "--protocol", "mw")
    assert rc == 0
    assert "(mw protocol" in out


def test_attribute(capsys):
    rc, out = run_cli(capsys, "attribute", "water", "--procs", "4")
    assert rc == 0
    assert "water_poteng" in out
    assert "unsynchronized-write" in out


def test_table2(capsys):
    rc, out = run_cli(capsys, "table2")
    assert rc == 0
    assert "Table 2" in out and "WATER" in out


def test_disasm_app_only(capsys):
    rc, out = run_cli(capsys, "disasm", "sor")
    assert rc == 0
    assert ".func main section=app" in out
    assert "section=library" not in out


def test_disasm_instrumented(capsys):
    rc, out = run_cli(capsys, "disasm", "tsp", "--instrumented")
    assert rc == 0
    assert "call __race_analysis" in out


def test_timeline(capsys):
    rc, out = run_cli(capsys, "timeline", "queue_racy")
    assert rc == 0
    assert "P0 |" in out and "happens-before edges" in out
    assert "race(s)" in out


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "doom"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
