"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


def test_apps_lists_everything(capsys):
    rc, out = run_cli(capsys, "apps")
    assert rc == 0
    for name in ("fft", "sor", "tsp", "water", "queue_racy"):
        assert name in out


def test_run_racy_app(capsys):
    # Races found -> exit code 1 (the grep convention; see repro.exitcodes).
    rc, out = run_cli(capsys, "run", "water", "--procs", "4")
    assert rc == 1
    assert "data race(s):" in out
    assert "water_poteng" in out
    assert "slowdown" in out


def test_run_clean_app(capsys):
    rc, out = run_cli(capsys, "run", "sor", "--procs", "2")
    assert rc == 0
    assert "no data races detected" in out


def test_run_queue_forces_three_procs(capsys):
    rc, out = run_cli(capsys, "run", "queue_racy", "--procs", "8")
    assert rc == 1  # the fig. 5 queue races by design
    assert "3 simulated processes" in out


def test_run_mw_protocol(capsys):
    rc, out = run_cli(capsys, "run", "water", "--procs", "2",
                      "--protocol", "mw")
    assert rc == 1
    assert "(mw protocol" in out


def test_attribute(capsys):
    rc, out = run_cli(capsys, "attribute", "water", "--procs", "4")
    assert rc == 0
    assert "water_poteng" in out
    assert "unsynchronized-write" in out


def test_table2(capsys):
    rc, out = run_cli(capsys, "table2")
    assert rc == 0
    assert "Table 2" in out and "WATER" in out


def test_disasm_app_only(capsys):
    rc, out = run_cli(capsys, "disasm", "sor")
    assert rc == 0
    assert ".func main section=app" in out
    assert "section=library" not in out


def test_disasm_instrumented(capsys):
    rc, out = run_cli(capsys, "disasm", "tsp", "--instrumented")
    assert rc == 0
    assert "call __race_analysis" in out


def test_timeline(capsys):
    rc, out = run_cli(capsys, "timeline", "queue_racy")
    assert rc == 0
    assert "P0 |" in out and "happens-before edges" in out
    assert "race(s)" in out


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "doom"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_config_error_maps_to_exit_code_2(capsys):
    # --trace-file without a two-phase mode is a ConfigError.
    rc = main(["run", "fft", "--procs", "2", "--trace-file", "/tmp/t.log"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "configuration error" in err and "--trace-file" in err


def test_fleet_submit_and_status(capsys, tmp_path):
    spool = str(tmp_path / "spool")
    rc, out = run_cli(capsys, "fleet", "submit", "--spool", spool,
                      "queue_racy", "--seeds", "0:3", "--mode", "record",
                      "--trace-file", str(tmp_path / "t.log"))
    assert rc == 0
    assert out.count("submitted job-") == 3
    assert "priority class 0" in out  # record rides the cheapest class
    rc, out = run_cli(capsys, "fleet", "status", "--spool", spool)
    assert rc == 0
    assert "spooled (awaiting ingestion): 3" in out


def test_fleet_submit_backpressure_exit_code_3(capsys, tmp_path):
    spool = str(tmp_path / "spool")
    rc, _out = run_cli(capsys, "fleet", "submit", "--spool", spool,
                       "fft", "--seeds", "0:2", "--queue-limit", "2")
    assert rc == 0
    rc = main(["fleet", "submit", "--spool", spool, "fft",
               "--queue-limit", "2"])
    assert rc == 3  # AdmissionError: transient backpressure, not config
    assert "backpressure" in capsys.readouterr().err


def test_fleet_submit_rejects_unknown_override(capsys, tmp_path):
    rc = main(["fleet", "submit", "--spool", str(tmp_path / "s"),
               "fft", "--set", "warp_speed=9"])
    assert rc == 3
    assert "unknown DsmConfig override" in capsys.readouterr().err


def test_fleet_drain_touches_marker(capsys, tmp_path):
    spool = tmp_path / "spool"
    rc, out = run_cli(capsys, "fleet", "drain", "--spool", str(spool))
    assert rc == 0
    assert (spool / "DRAIN").exists()


def test_fleet_serve_batch(capsys, tmp_path):
    spool = str(tmp_path / "spool")
    run_cli(capsys, "fleet", "submit", "--spool", spool, "queue_racy")
    rc, out = run_cli(capsys, "fleet", "serve", "--spool", spool,
                      "--slots", "1", "--drain-on-empty",
                      "--poll-interval", "0.02")
    assert rc == 0
    assert "drained" in out and "Fleet jobs" in out
    assert "queue_racy" in out
