"""TSP: optimality, the benign bound race, interval structure."""

from itertools import permutations

import pytest

from repro.apps.registry import APPLICATIONS
from repro.apps.tsp import TspParams, _distance_matrix, tsp
from repro.core.report import involves_symbol
from repro.dsm.cvm import CVM

SPEC = APPLICATIONS["tsp"]
SMALL = TspParams(ncities=8, seed_depth=3)


def brute_force_optimum(n):
    dist = _distance_matrix(n)
    best = None
    for perm in permutations(range(1, n)):
        tour = (0,) + perm
        total = sum(dist[tour[i] * n + tour[(i + 1) % n]] for i in range(n))
        best = total if best is None else min(best, total)
    return best


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_finds_optimal_tour(nprocs):
    res = CVM(SPEC.config(nprocs=nprocs)).run(tsp, SMALL)
    expected = brute_force_optimum(SMALL.ncities)
    assert res.results == [expected] * nprocs


def test_races_confined_to_tour_bound():
    """The paper's §5 headline for TSP: a large number of read-write data
    races, all on the global tour bound, all benign."""
    res = SPEC.run(nprocs=8)
    assert len(res.races) > 0
    assert all(involves_symbol(r, "tsp_bound") for r in res.races)
    assert all(r.kind.value == "read-write" for r in res.races)
    # The unsynchronized side is always a read (bound updates are locked).
    for r in res.races:
        kinds = {s.access for s in (r.a, r.b)}
        assert kinds == {"read", "write"}


def test_race_sites_marked():
    res = SPEC.run(nprocs=4)
    labels = {s.sync_label for r in res.races for s in (r.a, r.b)}
    assert labels  # intervals carry their opening synchronization labels


def test_optimum_unaffected_by_races():
    """Benign means benign: different schedules, same answer."""
    outs = set()
    for seed in (0, 1, 2):
        res = CVM(SPEC.config(nprocs=4, policy="random",
                              seed=seed)).run(tsp, SMALL)
        outs.update(res.results)
    assert len(outs) == 1


def test_interval_heavy_structure():
    res = SPEC.run(nprocs=8)
    # Lock-based work queue: far more intervals per barrier than the
    # barrier-only applications (Table 1: TSP has by far the most).
    assert res.intervals_per_barrier > 5
    assert res.lock_acquires > 20


def test_high_intervals_used_low_bitmaps_used():
    res = SPEC.run(nprocs=8)
    st = res.detector_stats
    # Table 3 TSP row: most intervals see unsynchronized sharing, a
    # minority of bitmaps must be fetched.
    assert st.intervals_used_fraction > 0.5
    assert st.bitmaps_used_fraction < st.intervals_used_fraction
