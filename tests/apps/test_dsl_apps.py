"""The irregular DSL workloads (wsdeque, bfs, hashtab) on the
instrument→dsm bridge.

Each app exists in two variants driven by one parameter: the default
racy build must report its seeded races (deque steal/pop index
collisions, unsynchronized visit counters, bucket-chain splices), and
``with_sync=True`` — the identical workload under its lock — must
report zero.  On top, the detection axes the registry sweeps for the
scalar apps are pinned here explicitly for the bridge-backed ones:
scalar vs batched engine, centralized vs sharded detection, coarse
filter off vs on all produce byte-identical reports.
"""

import pytest

from repro.apps.bfs import BfsParams, bfs
from repro.apps.hashtab import HashTabParams, hashtab
from repro.apps.registry import EXTRAS, get_app
from repro.apps.wsdeque import WsDequeParams, wsdeque
from repro.core.report import RaceKind
from repro.dsm.cvm import CVM

DSL_APPS = ("wsdeque", "bfs", "hashtab")
SYNCED = {
    "wsdeque": WsDequeParams(with_sync=True),
    "bfs": BfsParams(with_sync=True),
    "hashtab": HashTabParams(with_sync=True),
}


def run(app, nprocs=4, params=None, **overrides):
    spec = get_app(app)
    return spec.run(nprocs=nprocs, params=params, **overrides)


# ---------------------------------------------------------------------- #
# Registration and the racy/synced contract.
# ---------------------------------------------------------------------- #
def test_registered_as_extras():
    for app in DSL_APPS:
        assert app in EXTRAS
        assert EXTRAS[app].expect_races


@pytest.mark.parametrize("app", DSL_APPS)
@pytest.mark.parametrize("nprocs", [3, 4, 8])
def test_racy_variant_reports_races(app, nprocs):
    res = run(app, nprocs=nprocs)
    assert res.races, f"{app} at {nprocs} procs seeded no races"


@pytest.mark.parametrize("app", DSL_APPS)
@pytest.mark.parametrize("nprocs", [3, 4, 8])
def test_synced_variant_is_race_free(app, nprocs):
    res = run(app, nprocs=nprocs, params=SYNCED[app])
    assert res.races == []


def test_deque_races_hit_the_index_words():
    """The steal/pop collision: top and bottom live in the Deque record
    (heap words 0 and 1 of the pid-0 arena allocation)."""
    res = run("wsdeque", nprocs=4)
    kinds = {r.kind for r in res.races}
    assert RaceKind.WRITE_WRITE in kinds or RaceKind.READ_WRITE in kinds
    assert all(r.symbol.startswith("dslheap:wsdeque") for r in res.races)


def test_bfs_races_are_write_write_on_visit_counters():
    res = run("bfs", nprocs=4)
    assert any(r.kind is RaceKind.WRITE_WRITE for r in res.races)


def test_hashtab_races_on_bucket_heads():
    res = run("hashtab", nprocs=4)
    assert any(r.kind is RaceKind.WRITE_WRITE for r in res.races)
    assert all(r.symbol.startswith("dslheap:hashtab") for r in res.races)


# ---------------------------------------------------------------------- #
# Determinism and engine equivalence (the four detection axes).
# ---------------------------------------------------------------------- #
def _keyed(res):
    return ([str(r) for r in res.races], res.detector_stats)


@pytest.mark.parametrize("app", DSL_APPS)
def test_runs_are_deterministic(app):
    assert _keyed(run(app)) == _keyed(run(app))
    assert run(app).results == run(app).results


@pytest.mark.parametrize("app", DSL_APPS)
def test_scalar_engine_matches_batched(app):
    fast = run(app, nprocs=4, access_fast_path=True)
    ref = run(app, nprocs=4, access_fast_path=False)
    assert _keyed(fast) == _keyed(ref)
    assert fast.runtime_cycles == ref.runtime_cycles


@pytest.mark.parametrize("app", DSL_APPS)
def test_sharded_matches_centralized(app):
    central = run(app, nprocs=8)
    sharded = run(app, nprocs=8, sharded_detection=True)
    assert [str(r) for r in central.races] == [str(r) for r in sharded.races]


@pytest.mark.parametrize("app", DSL_APPS)
def test_coarse_filter_preserves_reports(app):
    off = run(app, nprocs=8, coarse_filter=False)
    on = run(app, nprocs=8, coarse_filter=True)
    assert [str(r) for r in off.races] == [str(r) for r in on.races]
    assert on.detector_stats.bitmaps_fetched <= \
        off.detector_stats.bitmaps_fetched


# ---------------------------------------------------------------------- #
# Bridge mechanics observable from the outside.
# ---------------------------------------------------------------------- #
def test_detection_off_still_runs():
    for app in DSL_APPS:
        res = run(app, detection=False)
        assert res.races == []


def test_hashtab_lookups_find_inserted_values():
    """Synced variant is semantically exact: every lookup hits and every
    remove succeeds, so each pid's sum is fully determined."""
    p = HashTabParams(with_sync=True, nb=4, keys_per_pid=3, rounds=2)
    res = run("hashtab", nprocs=4, params=p)
    for pid, total in enumerate(res.results):
        keys = [pid * p.keys_per_pid + i for i in range(p.keys_per_pid)]
        expect = sum(1000 * (r + 1) + k
                     for r in range(p.rounds) for k in keys)
        expect += p.rounds * p.keys_per_pid  # one per successful remove
        assert total == expect


def test_bfs_visits_whole_tree():
    """Every pid's traversal sum covers all 2^depth - 1 nodes (vals are
    1..nnodes by construction)."""
    p = BfsParams(with_sync=True, depth=3)
    res = run("bfs", nprocs=4, params=p)
    nnodes = 2 ** p.depth - 1
    assert res.results == [sum(range(1, nnodes + 1))] * 4


def test_private_instrumentation_flows_to_table3_accounting():
    """Stack accesses the filter could not prove private (local-array
    frontier in bfs) must surface as private analysis calls, the
    paper's Table 3 'false' instrumentations."""
    res = run("bfs", nprocs=4)
    assert res.detector_stats is not None
    stats = res.private_instr_calls
    assert stats > 0
