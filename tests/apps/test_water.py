"""Water: the seeded Splash2 bug, its fix, and the fine-grained structure."""

import pytest

from repro.apps.registry import APPLICATIONS
from repro.apps.water import WaterParams, water
from repro.core.report import RaceKind, involves_symbol
from repro.dsm.cvm import CVM

SPEC = APPLICATIONS["water"]
SMALL = WaterParams(nmol=16, steps=2)


def test_bug_found_as_write_write_race_on_poteng():
    """The paper's §5 headline for Water: a write-write race that is a
    real bug, on the global potential-energy accumulator."""
    res = SPEC.run(nprocs=8)
    assert len(res.races) > 0
    assert all(involves_symbol(r, "water_poteng") for r in res.races)
    assert any(r.kind is RaceKind.WRITE_WRITE for r in res.races)


def test_fixed_version_is_race_free():
    res = CVM(SPEC.config(nprocs=8)).run(
        water, WaterParams(nmol=SMALL.nmol, steps=SMALL.steps, fixed=True))
    assert res.races == []


def test_bug_actually_loses_updates():
    """The race is a genuine bug: under schedules that interleave the
    read-modify-write, the potential sum comes out lower than the fixed
    version's (lost updates)."""
    fixed = CVM(SPEC.config(nprocs=4)).run(
        water, WaterParams(nmol=SMALL.nmol, steps=SMALL.steps, fixed=True))
    correct = fixed.results[0]
    buggy_results = set()
    for seed in range(6):
        res = CVM(SPEC.config(nprocs=4, policy="random", seed=seed)).run(
            water, SMALL)
        buggy_results.add(round(res.results[0], 9))
    # The buggy version must disagree with the fixed sum for some seed.
    assert any(abs(b - correct) > 1e-9 for b in buggy_results)


def test_force_accumulation_race_free():
    """Per-partition locking keeps the force array itself race-free: all
    races are on the energy word, never on forces."""
    res = SPEC.run(nprocs=8)
    assert not any(involves_symbol(r, "water_forces") for r in res.races)
    assert not any(involves_symbol(r, "water_pos") for r in res.races)
    assert not any(involves_symbol(r, "water_kineng") for r in res.races)


def test_intermediate_interval_count():
    """Water sits between the barrier-only apps and TSP in intervals per
    barrier (Table 1: 2 < water < tsp)."""
    water_res = SPEC.run(nprocs=8)
    tsp_res = APPLICATIONS["tsp"].run(nprocs=8)
    assert 2.0 < water_res.intervals_per_barrier < \
        tsp_res.intervals_per_barrier


def test_deterministic_given_seed():
    a = CVM(SPEC.config(nprocs=4, policy="random", seed=3)).run(water, SMALL)
    b = CVM(SPEC.config(nprocs=4, policy="random", seed=3)).run(water, SMALL)
    assert a.results == b.results
    assert len(a.races) == len(b.races)
