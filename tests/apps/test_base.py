"""App infrastructure: block distribution, AppSpec, paired measurement."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.base import AppResult, band, measure
from repro.apps.registry import APPLICATIONS, EXTRAS, get_app


@given(st.integers(min_value=0, max_value=200),
       st.integers(min_value=1, max_value=16))
def test_band_partitions_exactly(total, nprocs):
    """Bands are contiguous, disjoint, ordered and cover [0, total)."""
    spans = [band(total, nprocs, pid) for pid in range(nprocs)]
    assert spans[0][0] == 0
    assert spans[-1][1] == total
    for (a_lo, a_hi), (b_lo, b_hi) in zip(spans, spans[1:]):
        assert a_hi == b_lo
        assert a_lo <= a_hi and b_lo <= b_hi
    sizes = [hi - lo for lo, hi in spans]
    assert max(sizes) - min(sizes) <= 1  # balanced


def test_get_app_known_and_unknown():
    assert get_app("tsp").name == "tsp"
    assert get_app("queue_racy").name == "queue_racy"
    assert get_app("lu").name == "lu"
    with pytest.raises(KeyError):
        get_app("doom")


def test_spec_config_overrides():
    spec = APPLICATIONS["sor"]
    cfg = spec.config(nprocs=2, detection=False, page_size_words=32)
    assert cfg.nprocs == 2 and not cfg.detection
    assert cfg.page_size_words == 32


def test_measure_pairs_identical_workload():
    result = measure(APPLICATIONS["sor"], nprocs=2)
    assert isinstance(result, AppResult)
    # Same workload both runs: identical app results, identical base
    # interval structure.
    assert result.base.results == result.detected.results
    assert result.base.barriers_completed == \
        result.detected.barriers_completed
    assert result.slowdown > 1.0
    # The undetected run carries no detector state at all.
    assert result.base.detector_stats is None
    assert result.base.races == []


def test_paper_params_are_larger():
    for spec in APPLICATIONS.values():
        assert spec.paper_params != spec.default_params
