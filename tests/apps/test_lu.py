"""LU decomposition: correctness, race-freedom, and the seeded pivot bug."""

import pytest

from repro.apps.lu import LuParams, lu, reference_lu_trace
from repro.core.report import RaceKind, involves_symbol
from repro.dsm.config import DsmConfig
from repro.dsm.cvm import CVM

SMALL = LuParams(n=16)


def run(params=SMALL, nprocs=4, **overrides):
    cfg = DsmConfig(nprocs=nprocs, page_size_words=64,
                    segment_words=1 << 14, **overrides)
    return CVM(cfg).run(lu, params)


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_matches_sequential_reference(nprocs):
    res = run(nprocs=nprocs)
    expected = reference_lu_trace(SMALL.n)
    assert res.results == [pytest.approx(expected)] * nprocs


def test_properly_synchronized_is_race_free():
    res = run(nprocs=4)
    assert res.races == []


def test_pipelined_sharing_exercises_bitmaps_without_races():
    """Rows interleave on pages: page-level overlap (pivot-row readers vs
    trailing-row writers) is pure false sharing.  The two-level filter is
    pinned off: this test exercises the unfiltered bitmap round."""
    res = run(nprocs=4, coarse_filter=False)
    st = res.detector_stats
    assert st.overlapping_pairs > 0
    assert st.bitmaps_fetched > 0
    assert res.races == []


def test_coarse_filter_proves_false_sharing_without_fetches():
    """The same false sharing through the two-level filter: the granule
    digests prove every overlapping pair race-free, so the bitmap round
    vanishes entirely — and the verdicts are unchanged."""
    res = run(nprocs=4)  # coarse_filter defaults on
    st = res.detector_stats
    assert st.overlapping_pairs > 0
    assert st.bitmaps_fetched == 0
    assert st.pairs_filtered > 0
    assert st.granule_hits == 0
    assert res.races == []


def test_missing_pivot_barrier_races_on_matrix():
    res = run(LuParams(n=16, skip_pivot_barrier=True), nprocs=4)
    assert res.races, "removing the pivot barrier must produce races"
    assert all(involves_symbol(r, "lu_matrix") for r in res.races)
    assert any(r.kind is RaceKind.READ_WRITE for r in res.races)


def test_barrier_count_scales_with_steps():
    res = run(nprocs=2)
    # One barrier per elimination step plus init/readback/final.
    assert res.barriers_completed >= SMALL.n - 1
    assert res.intervals_per_barrier == 2.0


def test_oracle_agreement_on_buggy_variant():
    from tests.helpers import online_race_keys
    from repro.core.baseline import HappensBeforeDetector
    cfg = DsmConfig(nprocs=3, page_size_words=64, segment_words=1 << 14,
                    track_access_trace=True)
    system = CVM(cfg)
    res = system.run(lu, LuParams(n=10, skip_pivot_barrier=True))
    online = online_race_keys(res)
    oracle = HappensBeforeDetector(system.store.vc_log).races(
        res.access_trace)
    assert online == oracle
