"""FFT: numerical correctness, false sharing without races."""

import cmath

import pytest

from repro.apps.fft import FftParams, _row_fft, fft
from repro.apps.registry import APPLICATIONS
from repro.dsm.cvm import CVM

SPEC = APPLICATIONS["fft"]
SMALL = FftParams(n=16, iterations=1)


def test_row_fft_matches_dft():
    row = [complex((3 * i) % 7 - 3, (i * i) % 5 - 2) for i in range(16)]
    out = _row_fft(row)
    for k in range(16):
        expected = sum(row[j] * cmath.exp(-2j * cmath.pi * j * k / 16)
                       for j in range(16))
        assert out[k] == pytest.approx(expected, abs=1e-9)


def test_row_fft_odd_size_fallback():
    row = [complex(i, 0) for i in range(6)]  # 6 = 2 * 3: hits odd branch
    out = _row_fft(row)
    for k in range(6):
        expected = sum(row[j] * cmath.exp(-2j * cmath.pi * j * k / 6)
                       for j in range(6))
        assert out[k] == pytest.approx(expected, abs=1e-9)


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_dc_magnitude_independent_of_nprocs(nprocs):
    res = CVM(SPEC.config(nprocs=nprocs)).run(fft, SMALL)
    # P0 computes |DC|; all runs must agree.
    single = CVM(SPEC.config(nprocs=1)).run(fft, SMALL)
    assert res.results[0] == pytest.approx(single.results[0])


def test_false_sharing_present_but_no_races():
    res = SPEC.run(nprocs=8)
    assert res.races == []
    st = res.detector_stats
    # The checksum page is written by all processes concurrently: page
    # overlap exists, bitmaps are fetched, no race results (Table 3 FFT).
    assert st.overlapping_pairs > 0
    assert st.bitmaps_fetched > 0
    assert 0 < st.intervals_used_fraction < 0.5
    assert st.bitmaps_used_fraction < st.intervals_used_fraction


def test_barrier_only_interval_structure():
    res = SPEC.run(nprocs=4)
    assert res.intervals_per_barrier == 2.0
