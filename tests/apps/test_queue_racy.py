"""The Figure 5 weak-memory queue example (Adve et al.)."""

import pytest

from repro.apps.queue_racy import (PUBLISHED_PTR, STALE_PTR, QueueParams,
                                   queue_app)
from repro.apps.registry import EXTRAS
from repro.core.report import RaceKind, involves_symbol
from repro.dsm.cvm import CVM

SPEC = EXTRAS["queue_racy"]


def run(params=QueueParams(), **overrides):
    cfg = SPEC.config(nprocs=3, **overrides)
    return CVM(cfg).run(queue_app, params)


def test_stale_pointer_read_under_lrc():
    """P2 reads the *stale* qPtr (37): the missing release/acquire means
    P1's publication never propagated — weak memory in action."""
    res = run()
    assert res.results[1] == STALE_PTR


def test_weak_memory_only_race_on_queue_cells():
    """w2(37)–w3(37): the race that could not occur on a sequentially
    consistent system (§6.4) does occur here and is reported."""
    res = run()
    cell_races = [r for r in res.races if involves_symbol(r, "queue_cells")]
    assert any(r.kind is RaceKind.WRITE_WRITE for r in cell_races)
    racy_offsets = {r.addr - _cells_addr(res) for r in cell_races}
    assert STALE_PTR in racy_offsets  # cell 37 collides


def _cells_addr(res):
    # queue_cells base: resolve via any report's symbol arithmetic.
    for r in res.races:
        if r.symbol.startswith("queue_cells"):
            off = 0 if "+" not in r.symbol else int(r.symbol.split("+")[1])
            return r.addr - off
    raise AssertionError("no queue_cells race found")


def test_qptr_and_qempty_races_reported():
    res = run()
    assert any(involves_symbol(r, "qPtr") for r in res.races)
    assert any(involves_symbol(r, "qEmpty") for r in res.races)


def test_with_sync_reads_fresh_and_race_free():
    res = run(QueueParams(with_sync=True))
    assert res.results[1] == PUBLISHED_PTR
    assert res.races == []


def test_requires_exactly_three_processes():
    # The app is written for 3 processes; other counts still run (extra
    # processes idle) — just ensure 3 is the documented configuration.
    res = run()
    assert res.config.nprocs == 3
