"""SOR: numerical correctness and the paper's zero-sharing property."""

import pytest

from repro.apps.registry import APPLICATIONS
from repro.apps.sor import SorParams, sor
from repro.dsm.cvm import CVM

SPEC = APPLICATIONS["sor"]
SMALL = SorParams(rows=16, cols=64, iterations=3)


def reference_sor(rows, cols, iterations):
    """Sequential Jacobi with the same initialization and boundary rule."""
    grid = [[100.0 if r in (0, rows - 1) else float(r % 7)
             for _c in range(cols)] for r in range(rows)]
    for _ in range(iterations):
        new = [row[:] for row in grid]
        for r in range(1, rows - 1):
            for c in range(1, cols - 1):
                new[r][c] = (grid[r - 1][c] + grid[r + 1][c]
                             + grid[r][c - 1] + grid[r][c + 1]) / 4.0
        grid = new
    return grid


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_matches_sequential_reference(nprocs):
    res = CVM(SPEC.config(nprocs=nprocs)).run(sor, SMALL)
    ref = reference_sor(SMALL.rows, SMALL.cols, SMALL.iterations)
    expected = ref[SMALL.rows // 2][SMALL.cols // 2]
    assert res.results == [pytest.approx(expected)] * nprocs


def test_no_races_and_zero_sharing():
    res = SPEC.run(nprocs=8)
    assert res.races == []
    st = res.detector_stats
    # Table 3's SOR row: literally zero unsynchronized sharing.
    assert st.intervals_used == 0
    assert st.bitmaps_fetched == 0
    assert st.overlapping_pairs == 0


def test_barrier_only_interval_structure():
    res = SPEC.run(nprocs=4)
    assert res.intervals_per_barrier == 2.0


def test_result_independent_of_nprocs():
    r2 = CVM(SPEC.config(nprocs=2)).run(sor, SMALL)
    r4 = CVM(SPEC.config(nprocs=4)).run(sor, SMALL)
    assert r2.results[0] == pytest.approx(r4.results[0])
