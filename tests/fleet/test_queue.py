"""Admission queue: priority order, FIFO within class, backpressure."""

import pytest

from repro.errors import AdmissionError
from repro.fleet.job import JobSpec
from repro.fleet.queue import JobQueue


def job(i, mode="online"):
    return JobSpec(job_id=f"job-{i:06d}", app="fft", mode=mode)


def test_priority_classes_dispatch_order():
    q = JobQueue()
    q.push(job(0, "online"))
    q.push(job(1, "detect-offline"))
    q.push(job(2, "record"))
    assert [j.mode for j in (q.pop(), q.pop(), q.pop())] == \
        ["record", "detect-offline", "online"]


def test_fifo_within_class():
    q = JobQueue()
    for i in range(5):
        q.push(job(i))
    assert [q.pop().job_id for _ in range(5)] == \
        [f"job-{i:06d}" for i in range(5)]


def test_admission_bound_backpressure():
    q = JobQueue(limit=2)
    q.push(job(0))
    q.push(job(1))
    assert q.full
    with pytest.raises(AdmissionError, match="backpressure"):
        q.push(job(2))
    assert q.rejected == 1
    q.pop()
    q.push(job(2))  # room again after a pop


def test_jobs_snapshot_matches_dispatch_order():
    q = JobQueue()
    q.push(job(0, "online"))
    q.push(job(1, "record"))
    snapshot = [j.job_id for j in q.jobs()]
    assert snapshot == ["job-000001", "job-000000"]
    assert len(q) == 2  # non-destructive


def test_remove_specific_job_preserves_order():
    q = JobQueue()
    for i in range(4):
        q.push(job(i))
    removed = q.remove("job-000001")
    assert removed.job_id == "job-000001"
    assert [j.job_id for j in q.jobs()] == \
        ["job-000000", "job-000002", "job-000003"]
    with pytest.raises(KeyError):
        q.remove("job-000001")
