"""Aggregate report: dedup across seeds, flake ranking, determinism."""

from repro.fleet.aggregate import build_aggregate, render_aggregate


def entry(job_id, app="tsp", mode="online", seed=0, state="races",
          sites=(), races=None):
    result = None
    if state in ("done", "races"):
        site_list = [list(s) for s in sites]
        result = {
            "races": races if races is not None
            else [f"DATA RACE line {i}" for i in range(len(site_list))],
            "race_sites": site_list,
            "unverifiable": 0,
        }
    return {"job_id": job_id, "app": app, "mode": mode, "nprocs": 4,
            "seed": seed, "state": state, "result": result}


SITE_A = ("read-write", "tsp_bound", 128)
SITE_B = ("write-write", "tsp_len", 130)


def test_dedup_across_seeds():
    agg = build_aggregate([
        entry("job-000000", seed=0, sites=[SITE_A]),
        entry("job-000001", seed=1, sites=[SITE_A]),
        entry("job-000002", seed=2, sites=[SITE_A, SITE_B]),
    ])
    assert len(agg["sites"]) == 2  # not 4: SITE_A dedups across seeds
    by_symbol = {r["symbol"]: r for r in agg["sites"]}
    assert by_symbol["tsp_bound"]["hits"] == 3
    assert by_symbol["tsp_bound"]["seeds"] == [0, 1, 2]
    assert by_symbol["tsp_bound"]["flaky"] is False
    assert by_symbol["tsp_len"]["hits"] == 1
    assert by_symbol["tsp_len"]["flaky"] is True


def test_flake_ranking_rarest_first():
    agg = build_aggregate([
        entry("job-000000", seed=0, sites=[SITE_A]),
        entry("job-000001", seed=1, sites=[SITE_A, SITE_B]),
        entry("job-000002", seed=2, sites=[SITE_A]),
    ])
    assert [r["symbol"] for r in agg["sites"]] == ["tsp_len", "tsp_bound"]


def test_record_jobs_excluded_from_race_stats():
    agg = build_aggregate([
        entry("job-000000", mode="record", state="done", sites=[],
              races=[]),
        entry("job-000001", mode="online", seed=0, sites=[SITE_A]),
    ])
    assert agg["race_rates"] == [{
        "app": "tsp", "detect_runs": 1, "racy_runs": 1,
        "distinct_sites": 1, "race_rate": 1.0}]


def test_failed_jobs_appear_without_results():
    agg = build_aggregate([
        entry("job-000000", state="poisoned"),
        entry("job-000001", state="failed"),
        entry("job-000002", seed=0, sites=[SITE_A]),
    ])
    assert agg["state_counts"] == {"failed": 1, "poisoned": 1, "races": 1}
    rows = {r["job_id"]: r for r in agg["jobs"]}
    assert rows["job-000000"]["races"] is None
    assert rows["job-000002"]["races"] == 1


def test_per_app_race_rate():
    agg = build_aggregate([
        entry("job-000000", app="fft", state="done", sites=[], races=[]),
        entry("job-000001", app="tsp", seed=0, sites=[SITE_A]),
        entry("job-000002", app="tsp", seed=1, state="done", sites=[],
              races=[]),
    ])
    rates = {r["app"]: r for r in agg["race_rates"]}
    assert rates["fft"]["race_rate"] == 0.0
    assert rates["tsp"]["race_rate"] == 0.5
    assert rates["tsp"]["distinct_sites"] == 1


def test_render_and_payload_deterministic():
    entries = [
        entry("job-000001", seed=1, sites=[SITE_A]),
        entry("job-000000", seed=0, sites=[SITE_A, SITE_B]),
    ]
    a = build_aggregate(list(entries))
    b = build_aggregate(list(reversed(entries)))
    assert a == b  # input order never leaks into the payload
    assert render_aggregate(a) == render_aggregate(b)
    assert "Fleet jobs" in render_aggregate(a)
