"""Fleet journal: framing, replay, torn-tail and mid-stream corruption."""

import pytest

from repro.errors import FleetError
from repro.fleet.journal import FleetJournal


def write_events(path, n=5):
    journal = FleetJournal(str(path))
    journal.open()
    for i in range(n):
        journal.append("submit", job_id=f"job-{i:06d}")
    journal.close()


def test_round_trip(tmp_path):
    path = tmp_path / "journal.log"
    write_events(path, 3)
    events, dropped = FleetJournal.replay(str(path))
    assert dropped == 0
    assert [e["event"] for e in events] == ["submit"] * 3
    assert [e["n"] for e in events] == [0, 1, 2]
    assert FleetJournal.last_seq(events) == 3


def test_missing_file_is_empty_history(tmp_path):
    events, dropped = FleetJournal.replay(str(tmp_path / "nope.log"))
    assert events == [] and dropped == 0


def test_torn_tail_dropped(tmp_path):
    path = tmp_path / "journal.log"
    write_events(path, 4)
    text = path.read_text()
    path.write_text(text[:-9])  # shear the last frame's hash line
    events, dropped = FleetJournal.replay(str(path))
    assert len(events) == 3
    assert dropped == 2  # the torn body line + its truncated hash line


def test_midstream_corruption_stops_replay(tmp_path):
    path = tmp_path / "journal.log"
    write_events(path, 4)
    lines = path.read_text().split("\n")
    lines[2] = lines[2].replace("job-000001", "job-999999")  # flip a body
    path.write_text("\n".join(lines))
    events, dropped = FleetJournal.replay(str(path))
    assert len(events) == 1  # everything after the bad frame is untrusted
    assert dropped > 0


def test_sequence_gap_rejected(tmp_path):
    path = tmp_path / "journal.log"
    journal = FleetJournal(str(path))
    journal.open(seq_start=0)
    journal.append("submit", job_id="a")
    journal.close()
    # A second writer starting at the wrong sequence is detected on replay.
    journal = FleetJournal(str(path))
    journal.open(seq_start=5)
    journal.append("submit", job_id="b")
    journal.close()
    events, _ = FleetJournal.replay(str(path))
    assert len(events) == 1


def test_reopen_truncates_torn_tail_before_appending(tmp_path):
    # A SIGKILLed writer leaves a partial line with no newline; a resumed
    # writer must cut back to the last intact frame first, or its next
    # frame glues onto the torn line and corrupts the journal from there.
    path = tmp_path / "journal.log"
    write_events(path, 3)
    path.write_bytes(path.read_bytes()[:-9])  # torn mid-frame, no newline
    events, dropped = FleetJournal.replay(str(path))
    assert len(events) == 2 and dropped == 2
    journal = FleetJournal(str(path))
    journal.open(seq_start=FleetJournal.last_seq(events))
    journal.append("drain")
    journal.close()
    events, dropped = FleetJournal.replay(str(path))
    assert dropped == 0
    assert [e["n"] for e in events] == [0, 1, 2]
    assert events[-1]["event"] == "drain"


def test_resume_continues_numbering(tmp_path):
    path = tmp_path / "journal.log"
    write_events(path, 2)
    events, _ = FleetJournal.replay(str(path))
    journal = FleetJournal(str(path))
    journal.open(seq_start=FleetJournal.last_seq(events))
    journal.append("drain")
    journal.close()
    events, dropped = FleetJournal.replay(str(path))
    assert dropped == 0
    assert [e["n"] for e in events] == [0, 1, 2]
    assert events[-1]["event"] == "drain"


def test_append_requires_open(tmp_path):
    journal = FleetJournal(str(tmp_path / "j.log"))
    with pytest.raises(FleetError, match="not open"):
        journal.append("drain")
    journal.open()
    with pytest.raises(FleetError, match="already open"):
        journal.open()
    journal.close()
