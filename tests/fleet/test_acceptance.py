"""The issue's acceptance scenario, end to end.

A queue of 12 mixed jobs (record + detect-offline + online across apps
and seeds) is served twice from identical submissions:

* a reference service runs uninterrupted;
* a victim service has one worker SIGKILLed mid-job by chaos injection,
  and is itself SIGKILLed mid-run, then restarted with ``--resume``.

Afterwards every job must be terminal, the SIGKILLed attempt must be
accounted as a retry (attempts == starts; no job ran twice without the
journal saying so), and both aggregates must be byte-identical.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.fleet import FleetJournal, FleetSpool, JobSpec, fold_journal

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")


def submit_mixed_queue(root):
    """12 jobs: 2 record + 2 detect-offline + 8 online (incl. one lossy)."""
    spool = FleetSpool(str(root))
    jobs = []
    trace = {s: os.path.join(str(root), f"trace-{s}.log") for s in (0, 1)}
    i = 0

    def add(**kw):
        nonlocal i
        spec = JobSpec(job_id=f"job-{i:06d}", **kw)
        spool.submit(spec)
        jobs.append(spec)
        i += 1

    for seed in (0, 1):
        add(app="queue_racy", mode="record", nprocs=3, seed=seed,
            overrides={"trace_file": trace[seed]})
    for seed in (0, 1):
        # May race ahead of its record job and fail transiently on the
        # missing trace: that is the retry path working as designed.
        add(app="queue_racy", mode="detect-offline", nprocs=3, seed=seed,
            overrides={"trace_file": trace[seed]}, max_retries=8)
    for seed in range(4):
        add(app="queue_racy", mode="online", nprocs=3, seed=seed)
    add(app="queue_racy", mode="online", nprocs=3, seed=0,
        overrides={"loss_rate": 0.05, "fault_seed": 1})  # lossy online
    add(app="fft", mode="online", nprocs=2, seed=0)
    add(app="tsp", mode="online", nprocs=4, seed=0)
    add(app="water", mode="online", nprocs=4, seed=0)
    assert len(jobs) == 12
    return spool


def serve_argv(root, *extra):
    return [sys.executable, "-m", "repro.cli", "fleet", "serve",
            "--spool", str(root), "--slots", "2", "--drain-on-empty",
            "--poll-interval", "0.02", "--backoff-base", "0.05",
            "--backoff-cap", "0.2", *extra]


def env():
    e = dict(os.environ)
    e["PYTHONPATH"] = SRC + os.pathsep + e.get("PYTHONPATH", "")
    return e


def test_mixed_queue_survives_worker_and_service_kills(tmp_path):
    ref_root = tmp_path / "reference"
    vic_root = tmp_path / "victim"
    submit_mixed_queue(ref_root)
    submit_mixed_queue(vic_root)

    # Reference: uninterrupted execution.
    ref = subprocess.run(serve_argv(ref_root), env=env(),
                         capture_output=True, text=True, timeout=300)
    assert ref.returncode == 0, ref.stdout + ref.stderr

    # Victim: chaos-SIGKILL the 3rd started worker mid-job, and SIGKILL
    # the service itself once a few jobs are in flight.
    proc = subprocess.Popen(
        serve_argv(vic_root, "--chaos-kill-worker", "3",
                   "--chaos-kill-after", "0.1"),
        env=env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    journal_path = FleetSpool(str(vic_root)).journal_path
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        events, _ = FleetJournal.replay(journal_path)
        if sum(1 for e in events if e["event"] == "terminal") >= 3:
            break
        if proc.poll() is not None:
            pytest.fail("service exited before it could be killed")
        time.sleep(0.05)
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)

    resumed = subprocess.run(serve_argv(vic_root, "--resume"), env=env(),
                             capture_output=True, text=True, timeout=300)
    assert resumed.returncode == 0, resumed.stdout + resumed.stderr

    # Every job reached a terminal state, none poisoned/failed.
    events, dropped = FleetJournal.replay(journal_path)
    records, _, drained = fold_journal(events)
    assert drained
    assert len(records) == 12
    assert all(rec.state in ("done", "races")
               for rec in records.values()), {
        jid: (rec.state, rec.reason) for jid, rec in records.items()}

    # No job ran twice without being counted as a retry: per job,
    # start events == the final attempts counter, and every start
    # beyond the first is preceded by a journaled retry.
    for jid, rec in records.items():
        starts = [e for e in events
                  if e["event"] == "start" and e["job_id"] == jid]
        retries = [e for e in events
                   if e["event"] == "retry" and e["job_id"] == jid]
        assert len(starts) == rec.attempts
        assert len(starts) == len(retries) + 1

    # The chaos SIGKILL really happened and was retried.
    assert any(e["event"] == "chaos_kill" for e in events)

    # Aggregate byte-identical to the uninterrupted execution.
    for name in ("aggregate.txt", "aggregate.json"):
        ref_bytes = (ref_root / name).read_bytes()
        vic_bytes = (vic_root / name).read_bytes()
        assert ref_bytes == vic_bytes, f"{name} differs"
