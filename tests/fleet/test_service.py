"""FleetService supervision: scheduling, retry/poison policy, recovery.

These run the service loop in-process (real worker subprocesses, fast
poll/backoff settings).  The full kill-the-service acceptance scenario
lives in test_acceptance.py.
"""

import os

import pytest

from repro.errors import AdmissionError, FleetError
from repro.fleet import FleetJournal, FleetService, FleetSpool, JobSpec


def quiet(*_args, **_kw):
    pass


def service(spool, **kw):
    defaults = dict(slots=2, poll_interval=0.02, heartbeat_interval=0.1,
                    heartbeat_timeout=5.0, backoff_base=0.05,
                    backoff_cap=0.2, drain_on_empty=True, log=quiet)
    defaults.update(kw)
    return FleetService(str(spool), **defaults)


def submit(spool, i, app="queue_racy", **kw):
    spool = FleetSpool(str(spool))
    base = dict(job_id=f"job-{i:06d}", app=app,
                nprocs=3 if app == "queue_racy" else 2)
    base.update(kw)
    spec = JobSpec(**base)
    spool.submit(spec)
    return spec


def test_empty_queue_drains_immediately(tmp_path):
    svc = service(tmp_path)
    assert svc.serve() == 0
    assert os.path.exists(svc.spool.aggregate_txt)


def test_mixed_jobs_complete(tmp_path):
    submit(tmp_path, 0, app="queue_racy", seed=0)
    submit(tmp_path, 1, app="queue_racy", seed=1)
    submit(tmp_path, 2, app="fft")
    svc = service(tmp_path)
    assert svc.serve() == 0
    states = {jid: rec.state for jid, rec in svc.records.items()}
    assert states == {"job-000000": "races", "job-000001": "races",
                      "job-000002": "done"}
    # Every completed job has a verifiable framed result.
    for jid in states:
        payload, _ = svc.spool.load_result(jid)
        assert payload["job_id"] == jid


def test_chaos_sigkill_is_retried_and_completes(tmp_path):
    submit(tmp_path, 0)
    svc = service(tmp_path, chaos_kill_worker=1, chaos_kill_after=0.1)
    assert svc.serve() == 0
    rec = svc.records["job-000000"]
    assert rec.state == "races"
    assert rec.attempts == 2  # the SIGKILLed attempt counted as a retry
    assert rec.crashes == 1


def test_transient_failures_exhaust_retry_budget(tmp_path):
    submit(tmp_path, 0, chaos={"exit_code": 3}, max_retries=2)
    svc = service(tmp_path)
    assert svc.serve() == 3  # degraded: a job failed
    rec = svc.records["job-000000"]
    assert rec.state == "failed"
    assert rec.attempts == 3  # 1 + max_retries
    assert "retry budget exhausted" in rec.reason


def test_config_error_fails_permanently_without_retry(tmp_path):
    # trace_file with online mode is a ConfigError -> exit 2 -> permanent.
    submit(tmp_path, 0, overrides={"trace_file": "/tmp/nope.log"})
    svc = service(tmp_path)
    assert svc.serve() == 3
    rec = svc.records["job-000000"]
    assert rec.state == "failed"
    assert rec.attempts == 1  # retrying a config error is pointless
    assert "config" in rec.reason


def test_hung_worker_is_killed_and_poisoned(tmp_path):
    submit(tmp_path, 0, chaos={"hang": True}, max_crashes=1)
    svc = service(tmp_path, heartbeat_timeout=0.4)
    assert svc.serve() == 3
    rec = svc.records["job-000000"]
    assert rec.state == "poisoned"
    assert rec.crashes == 1


def test_crashes_poison_after_cap(tmp_path):
    # A worker that always dies by signal-style exit codes is poisoned
    # after max_crashes crashes even with retry budget left.
    submit(tmp_path, 0, chaos={"hang": True}, max_crashes=2,
           max_retries=5)
    svc = service(tmp_path, heartbeat_timeout=0.3)
    assert svc.serve() == 3
    rec = svc.records["job-000000"]
    assert rec.state == "poisoned"
    assert rec.crashes == 2
    assert rec.attempts == 2


def test_oversized_job_fails_at_placement(tmp_path):
    submit(tmp_path, 0, app="fft", nprocs=64)  # 8 slots > pool of 2
    svc = service(tmp_path)
    assert svc.serve() == 3
    rec = svc.records["job-000000"]
    assert rec.state == "failed"
    assert "enlarge --slots" in rec.reason


def test_corrupt_submission_quarantined(tmp_path):
    spool = FleetSpool(str(tmp_path))
    spool.ensure()
    bad = os.path.join(spool.pending_dir, "job-000099.json")
    with open(bad, "w") as fh:
        fh.write("{not a frame}\n")
    submit(tmp_path, 0, app="fft")
    svc = service(tmp_path)
    assert svc.serve() == 0  # the good job still completes
    assert svc.records["job-000000"].state == "done"
    assert os.path.exists(bad + ".corrupt")
    assert not os.path.exists(bad)


def test_spool_backpressure_on_submit(tmp_path):
    spool = FleetSpool(str(tmp_path))
    for i in range(3):
        spool.submit(JobSpec(job_id=f"job-{i:06d}", app="fft"), limit=3)
    with pytest.raises(AdmissionError, match="backpressure"):
        spool.submit(JobSpec(job_id="job-000003", app="fft"), limit=3)


def test_serve_refuses_used_spool_without_resume(tmp_path):
    svc = service(tmp_path)
    assert svc.serve() == 0
    with pytest.raises(FleetError, match="--resume"):
        service(tmp_path).serve()


def test_two_live_services_cannot_share_a_spool(tmp_path):
    # Two writers folding one journal would interleave frames and
    # corrupt the sequence; the second taker must be refused loudly.
    first = service(tmp_path)
    first.spool.ensure()
    lock = first._take_serve_lock()
    try:
        with pytest.raises(FleetError) as exc_info:
            service(tmp_path).serve()
        message = str(exc_info.value)
        assert "already being served" in message
        assert str(os.getpid()) in message  # names the holder
    finally:
        lock.close()
    # flock dies with its holder: a fresh service may serve afterwards.
    assert service(tmp_path, drain_on_empty=True).serve() == 0


def test_journal_records_full_lifecycle(tmp_path):
    submit(tmp_path, 0, app="fft")
    svc = service(tmp_path)
    svc.serve()
    events, dropped = FleetJournal.replay(svc.spool.journal_path)
    assert dropped == 0
    kinds = [e["event"] for e in events]
    assert kinds[0] == "service"
    assert "submit" in kinds and "start" in kinds
    assert "outcome" in kinds and "terminal" in kinds
    assert kinds[-1] == "drained"


def test_priority_order_under_single_slot(tmp_path):
    trace = str(tmp_path / "trace.log")
    # Submitted in "wrong" order; the queue must run the record job
    # first (priority class 0) so detect-offline finds its trace.
    submit(tmp_path, 0, mode="detect-offline",
           overrides={"trace_file": trace}, seed=0)
    submit(tmp_path, 1, mode="record", overrides={"trace_file": trace},
           seed=0)
    svc = service(tmp_path, slots=1)
    assert svc.serve() == 0
    assert svc.records["job-000001"].state == "done"    # record
    assert svc.records["job-000000"].state == "races"   # detect-offline
    events, _ = FleetJournal.replay(svc.spool.journal_path)
    starts = [e["job_id"] for e in events if e["event"] == "start"]
    assert starts[0] == "job-000001"  # record dispatched first
