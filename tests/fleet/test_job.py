"""Job model: validation, priority classes, slot sizing, framed payloads."""

import pytest

from repro.errors import FleetError
from repro.fleet.job import (JobSpec, PRIORITY_CLASSES, PROCS_PER_SLOT,
                             frame_payload, parse_framed_payload)


def make_job(**kw):
    base = dict(job_id="job-000000", app="fft")
    base.update(kw)
    return JobSpec(**base)


def test_priority_classes_order_record_first():
    assert PRIORITY_CLASSES["record"] < PRIORITY_CLASSES["detect-offline"]
    assert PRIORITY_CLASSES["detect-offline"] < PRIORITY_CLASSES["online"]
    assert make_job(mode="record").priority == 0
    assert make_job(mode="online").priority == 2


@pytest.mark.parametrize("nprocs,slots", [
    (1, 1), (PROCS_PER_SLOT, 1), (PROCS_PER_SLOT + 1, 2),
    (4 * PROCS_PER_SLOT, 4)])
def test_slot_sizing_rounds_up(nprocs, slots):
    assert make_job(nprocs=nprocs).slots == slots


def test_attempts_allowed_is_one_plus_retries():
    assert make_job(max_retries=0).attempts_allowed == 1
    assert make_job(max_retries=3).attempts_allowed == 4


def test_rejects_unknown_mode():
    with pytest.raises(FleetError, match="unknown mode"):
        make_job(mode="turbo")


def test_rejects_unknown_override_key():
    with pytest.raises(FleetError, match="unknown DsmConfig override"):
        make_job(overrides={"warp_speed": 9})


def test_rejects_cost_model_override():
    # Non-serializable fields are refused even though DsmConfig has them.
    with pytest.raises(FleetError, match="cost_model"):
        make_job(overrides={"cost_model": None})


def test_rejects_bad_budgets():
    with pytest.raises(FleetError):
        make_job(max_retries=-1)
    with pytest.raises(FleetError):
        make_job(max_crashes=0)


def test_config_overrides_fold_seed_mode_deadline():
    job = make_job(mode="record", seed=7, deadline_seconds=2.5,
                   overrides={"trace_file": "/tmp/t.log",
                              "loss_rate": 0.05})
    kw = job.config_overrides()
    assert kw["seed"] == 7
    assert kw["mode"] == "record"
    assert kw["deadline_seconds"] == 2.5
    assert kw["trace_file"] == "/tmp/t.log"
    assert kw["loss_rate"] == 0.05


def test_framed_round_trip():
    job = make_job(mode="detect-offline", nprocs=6, seed=3,
                   overrides={"trace_file": "/tmp/t.log"},
                   deadline_seconds=1.0, max_retries=5, max_crashes=3,
                   chaos={"exit_code": 3})
    back = JobSpec.parse_framed(job.to_framed())
    assert back == job


def test_torn_frame_detected():
    framed = make_job().to_framed()
    with pytest.raises(FleetError, match="torn or corrupt"):
        JobSpec.parse_framed(framed[:-1])
    with pytest.raises(FleetError, match="torn or corrupt"):
        JobSpec.parse_framed(framed.replace("fft", "sor"))


def test_version_mismatch_rejected():
    payload = make_job().to_payload()
    payload["version"] = 99
    with pytest.raises(FleetError, match="version"):
        JobSpec.from_payload(payload)


def test_frame_payload_round_trip_generic():
    payload = {"a": 1, "b": [1, 2, 3]}
    assert parse_framed_payload(frame_payload(payload), "x") == payload
