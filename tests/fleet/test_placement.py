"""Sized-slot placement: fit, occupy, release, and invariants."""

import pytest

from repro.errors import FleetError
from repro.fleet.job import JobSpec, PROCS_PER_SLOT
from repro.fleet.placement import Placement, SlotPool


def job(i, nprocs=1):
    return JobSpec(job_id=f"job-{i:06d}", app="fft", nprocs=nprocs)


def test_lowest_contiguous_fit():
    pool = SlotPool(4)
    p0 = pool.place(job(0, nprocs=PROCS_PER_SLOT))
    assert p0.start == 0 and p0.size == 1
    p1 = pool.place(job(1, nprocs=2 * PROCS_PER_SLOT))
    assert p1.start == 1 and p1.size == 2
    assert pool.free_slots == 1


def test_no_fit_returns_none_not_error():
    pool = SlotPool(2)
    pool.place(job(0, nprocs=2 * PROCS_PER_SLOT))
    assert pool.place(job(1)) is None


def test_fragmented_pool_needs_contiguous_block():
    pool = SlotPool(3)
    pool.place(job(0))                      # slot 0
    middle = pool.place(job(1))             # slot 1
    pool.place(job(2))                      # slot 2
    pool.release(middle.job_id)             # free slot 1 only
    # A 2-slot job cannot straddle the fragmentation.
    assert pool.place(job(3, nprocs=2 * PROCS_PER_SLOT)) is None
    assert pool.place(job(4)).start == 1


def test_job_larger_than_pool_is_loud():
    pool = SlotPool(2)
    with pytest.raises(FleetError, match="enlarge --slots"):
        pool.fit(job(0, nprocs=3 * PROCS_PER_SLOT))


def test_overlap_and_bounds_validated():
    pool = SlotPool(4)
    pool.occupy(Placement("job-000000", 1, 2))
    with pytest.raises(FleetError, match="overlaps"):
        pool.occupy(Placement("job-000001", 2, 2))
    with pytest.raises(FleetError, match="out of bounds"):
        pool.occupy(Placement("job-000002", 3, 2))
    with pytest.raises(FleetError, match="already placed"):
        pool.occupy(Placement("job-000000", 0, 1))


def test_release_unplaced_is_error():
    pool = SlotPool(2)
    with pytest.raises(FleetError, match="holds no placement"):
        pool.release("job-000000")


def test_release_then_reuse():
    pool = SlotPool(1)
    pool.place(job(0))
    pool.release("job-000000")
    assert pool.place(job(1)).start == 0
    pool.validate()


def test_validate_catches_corruption():
    pool = SlotPool(2)
    pool.place(job(0))
    pool._occupancy[1] = "phantom"
    with pytest.raises(FleetError, match="disagrees"):
        pool.validate()
