"""Checkpoint-directory exclusivity: two runs must never share one.

Interleaved snapshot files from concurrent runs would corrupt both
histories silently, so the CheckpointManager takes an advisory lock on
``<dir>/LOCK`` and a second taker gets a :class:`ConfigError` naming
the holder — the fleet sidesteps the guard by scoping every job under
``<spool>/ckpt/<job-id>``.
"""

import os

import pytest

from repro.apps.registry import get_app
from repro.dsm.checkpoint import CheckpointManager
from repro.errors import ConfigError


def manager(directory):
    return CheckpointManager(directory=directory)


def test_second_taker_refused_and_names_holder(tmp_path):
    d = str(tmp_path / "ckpts")
    first = manager(d)
    try:
        with pytest.raises(ConfigError) as exc_info:
            manager(d)
        message = str(exc_info.value)
        assert "--checkpoint-dir" in message
        assert f"os-pid {os.getpid()}" in message  # who holds it
        assert "ckpt/<job-id>" in message          # the fleet's way out
    finally:
        first.close()


def test_lock_released_on_close(tmp_path):
    d = str(tmp_path / "ckpts")
    manager(d).close()
    second = manager(d)  # relock after release succeeds
    second.close()


def test_memory_only_checkpointing_needs_no_lock(tmp_path):
    # No directory, no lock: in-memory checkpointing runs can share.
    a = manager(None)
    b = manager(None)
    a.close()
    b.close()


def test_full_run_collision_via_config(tmp_path):
    d = str(tmp_path / "ckpts")
    spec = get_app("queue_racy")
    cfg = spec.config(nprocs=3, checkpoint_dir=d)
    from repro.dsm.cvm import CVM
    system = CVM(cfg)  # holds the lock while alive
    try:
        with pytest.raises(ConfigError, match="already in use"):
            spec.run(nprocs=3, checkpoint_dir=d)
    finally:
        system.checkpoints.close()


def test_lock_released_after_run_completes(tmp_path):
    d = str(tmp_path / "ckpts")
    spec = get_app("queue_racy")
    spec.run(nprocs=3, checkpoint_dir=d)
    # The finished run closed its manager; a new run may reuse the dir.
    result = spec.run(nprocs=3, resume_from=d)
    assert result.races


def test_lock_file_ignored_by_loader(tmp_path):
    d = str(tmp_path / "ckpts")
    spec = get_app("queue_racy")
    spec.run(nprocs=3, checkpoint_dir=d)
    assert os.path.exists(os.path.join(d, "LOCK"))
    store = CheckpointManager.load_dir(d)  # must not trip on LOCK
    assert store.latest(0) is not None
