"""Unit tests for the elected coordinator role (master failover).

Covers the deterministic election function, the role's journal/restore
round trip (the real serialize → canonical JSON → parse → restore path),
the barrier-master reassignment guards, and the config-layer validation
of the failover knobs.
"""

import json

import pytest

from repro.dsm.config import DsmConfig
from repro.dsm.coordinator import (CoordinatorRole, FailoverStats,
                                   elect_coordinator)
from repro.dsm.sync import BarrierState
from repro.errors import SynchronizationError
from repro.sim.clock import VirtualClock
from repro.sim.costmodel import (OVERHEAD_CATEGORIES, CostCategory,
                                 CostModel)


# ---------------------------------------------------------------------- #
# Election: deterministic, rank-based, never the dead coordinator.
# ---------------------------------------------------------------------- #
def test_election_picks_lowest_live_pid():
    assert elect_coordinator(0, [1, 2, 3], 4) == 1
    assert elect_coordinator(0, [3, 2], 4) == 2
    assert elect_coordinator(2, [0, 1, 3], 4) == 0


def test_election_never_returns_the_dead_coordinator():
    # Even if the (recovering) old coordinator shows up as live again,
    # the role moves: re-electing the crashed pid would defeat failover.
    assert elect_coordinator(0, [0, 2, 3], 4) == 2


def test_election_with_everyone_crashed_falls_back_to_rank():
    # All processes crashed this epoch: the lowest pid other than the
    # dead coordinator wins and recovers at its own arrival.
    assert elect_coordinator(0, [], 4) == 1
    assert elect_coordinator(1, [], 4) == 0


def test_election_requires_a_possible_successor():
    with pytest.raises(ValueError, match="no process"):
        elect_coordinator(0, [], 1)


def test_election_is_deterministic():
    for _ in range(3):
        assert elect_coordinator(0, [3, 1, 2], 4) == 1


# ---------------------------------------------------------------------- #
# Role state: journal and install round trip.
# ---------------------------------------------------------------------- #
def _role(failover=True, detector=None, factory=None):
    return CoordinatorRole(4, failover=failover, detector=detector,
                           detector_factory=factory or (lambda pid: None),
                           initial_pid=0)


def test_role_state_json_is_canonical():
    role = _role()
    text = role.state_json()
    # Canonical form: sorted keys, no whitespace — byte sizes must be
    # deterministic because they are priced.
    assert text == json.dumps(json.loads(text), sort_keys=True,
                              separators=(",", ":"))


def test_journal_state_charges_failover_not_overhead():
    role = _role()
    clock = VirtualClock()
    cm = CostModel()
    nbytes = role.journal_state(clock, cm)
    assert nbytes == len(role.journal_json.encode("utf-8"))
    assert clock.now == pytest.approx(cm.checkpoint_write_per_byte * nbytes)
    ledger = clock.ledger
    assert ledger.totals[CostCategory.FAILOVER] > 0
    assert all(ledger.totals[cat] == 0 for cat in OVERHEAD_CATEGORIES)
    assert role.stats.state_checkpoints == 1
    assert role.stats.state_checkpoint_bytes == nbytes


def test_install_from_journal_moves_the_role():
    built = []

    def factory(pid):
        built.append(pid)
        return None

    role = _role(factory=factory)
    role.journal_state(VirtualClock(), CostModel())
    nbytes = role.install_from_journal(2)
    assert role.pid == 2
    assert built == [2]  # a fresh detector is built for the winner
    assert role.stats.elections_held == 1
    assert role.stats.state_bytes_migrated == nbytes


def test_snapshot_section_carries_state_only_for_the_holder():
    role = _role()
    holder = role.snapshot_section(0)
    other = role.snapshot_section(3)
    assert holder["pid"] == other["pid"] == 0
    assert holder["state"] is not None
    assert other["state"] is None


def test_failover_stats_summary_keys():
    s = FailoverStats().summary()
    assert set(s) == {"elections_held", "state_bytes_migrated",
                      "records_resolicited", "state_checkpoints",
                      "state_checkpoint_bytes", "journal_fallbacks"}
    assert all(v == 0 for v in s.values())


# ---------------------------------------------------------------------- #
# Journal durability: torn or corrupt journal tails are detected on
# restore and the role falls back instead of installing garbage.
# ---------------------------------------------------------------------- #
class _FakeDetector:
    """Observable stand-in: records what state was restored into it."""

    def __init__(self):
        self.restored = None

    def serialize_state(self):
        return {"marker": "live"}

    def restore_state(self, state):
        self.restored = state


def _observable_role():
    return CoordinatorRole(4, failover=True, detector=_FakeDetector(),
                           detector_factory=lambda pid: _FakeDetector(),
                           initial_pid=0)


def test_journal_is_framed_and_round_trips():
    role = _observable_role()
    role.journal_state(VirtualClock(), CostModel())
    framed = role.journal_json
    body, _, digest = framed.rpartition("\n")
    assert body == role.state_json()
    state = CoordinatorRole.parse_journal(framed)
    assert state == {"pid": 0, "detector": {"marker": "live"}}


@pytest.mark.parametrize("cut", [1, 10, -1, -20])
def test_parse_journal_rejects_truncation(cut):
    role = _observable_role()
    role.journal_state(VirtualClock(), CostModel())
    framed = role.journal_json
    with pytest.raises(ValueError, match="torn or corrupt"):
        CoordinatorRole.parse_journal(framed[:cut])


def test_parse_journal_rejects_flipped_byte():
    role = _observable_role()
    role.journal_state(VirtualClock(), CostModel())
    framed = role.journal_json
    corrupt = framed.replace('"marker"', '"mXrker"', 1)
    assert corrupt != framed
    with pytest.raises(ValueError, match="torn or corrupt"):
        CoordinatorRole.parse_journal(corrupt)


def test_parse_journal_rejects_wrong_shape():
    framed = CoordinatorRole.frame_journal('["not", "a", "role"]')
    with pytest.raises(ValueError, match="malformed"):
        CoordinatorRole.parse_journal(framed)


def test_install_from_intact_journal_restores_journaled_state():
    role = _observable_role()
    role.journal_state(VirtualClock(), CostModel())
    role.install_from_journal(2)
    assert role.detector.restored == {"marker": "live"}
    assert role.stats.journal_fallbacks == 0


def test_install_from_torn_journal_uses_checkpoint_fallback():
    role = _observable_role()
    role.journal_state(VirtualClock(), CostModel())
    role._journal = role._journal[:len(role._journal) // 2]
    role.install_from_journal(
        2, fallback_state={"pid": 0, "detector": {"marker": "checkpoint"}})
    assert role.pid == 2
    assert role.detector.restored == {"marker": "checkpoint"}
    assert role.stats.journal_fallbacks == 1
    assert role.stats.elections_held == 1


def test_install_from_torn_journal_without_checkpoint_uses_memory():
    role = _observable_role()
    role.journal_state(VirtualClock(), CostModel())
    role._journal = "garbage with no frame"
    role.install_from_journal(1)
    assert role.detector.restored == {"marker": "live"}
    assert role.stats.journal_fallbacks == 1


# ---------------------------------------------------------------------- #
# Barrier-master reassignment guards.
# ---------------------------------------------------------------------- #
def test_reassign_master_requires_failover():
    bar = BarrierState(4)
    with pytest.raises(SynchronizationError, match="pinned"):
        bar.reassign_master(1)
    assert bar.master == 0


def test_reassign_master_moves_the_master():
    bar = BarrierState(4, failover=True)
    bar.reassign_master(2)
    assert bar.master == 2
    # The old master is just another process now and can be declared dead.
    bar.declare_dead(0)
    # Under failover even the current master may be declared dead: in an
    # epoch where *every* process crashed, the elected successor is itself
    # recovering and is declared dead like the rest.
    bar.declare_dead(2)
    assert bar.dead_this_generation == {0, 2}


def test_reassign_master_rejects_out_of_range_pid():
    bar = BarrierState(4, failover=True)
    with pytest.raises(SynchronizationError, match="elect"):
        bar.reassign_master(4)


def test_declare_dead_master_allowed_under_failover():
    bar = BarrierState(4, failover=True)
    bar.reassign_master(1)
    bar.declare_dead(0)  # the old master is just another process now


def test_horizons_recorded_only_under_failover():
    bar = BarrierState(2, failover=False)
    assert bar.horizons == {}
    bar = BarrierState(2, failover=True)
    assert bar.failover
    bar.horizons[0] = object()
    bar.reset_for_next_generation()
    assert bar.horizons == {}


# ---------------------------------------------------------------------- #
# Config-layer validation.
# ---------------------------------------------------------------------- #
def test_config_rejects_crash_at_master_without_failover():
    with pytest.raises(ValueError, match="master"):
        DsmConfig(nprocs=4, crash_at=((0, 1),))


def test_config_error_points_at_the_failover_flag():
    with pytest.raises(ValueError, match="--master-failover"):
        DsmConfig(nprocs=4, crash_at=((0, 1),))


def test_config_accepts_crash_at_master_with_failover():
    cfg = DsmConfig(nprocs=4, crash_at=((0, 1),), master_failover=True)
    assert cfg.master_failover


def test_config_rejects_master_crash_with_single_process():
    with pytest.raises(ValueError, match="nprocs=1"):
        DsmConfig(nprocs=1, crash_at=((0, 1),), master_failover=True)


def test_config_rejects_nonpositive_election_timeout():
    with pytest.raises(ValueError, match="election_timeout"):
        DsmConfig(nprocs=4, master_failover=True, election_timeout=0.0)
