"""Event (one-shot flag) synchronization: CVM's generalized sync."""

import pytest

from tests.helpers import online_race_keys, run_app, run_app_with_system

from repro.errors import DeadlockError, SynchronizationError


def test_event_orders_producer_consumer():
    """The canonical flag idiom: producer writes, sets; consumer waits,
    reads — ordered, race-free, and the fresh value arrives."""
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 0:
            env.store(x, 123)
            env.set_event(1)
            return None
        env.wait_event(1)
        return env.load(x)

    res = run_app(app, nprocs=2)
    assert res.results[1] == 123
    assert res.races == []


def test_event_without_wait_leaves_race():
    """Same producer, but the consumer skips the wait: the race is back —
    exactly the Figure 5 'missing acquire' situation."""
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 0:
            env.store(x, 123)
            env.set_event(1)
            return None
        env.pause(3)       # scheduling only: no ordering
        return env.load(x)

    res = run_app(app, nprocs=2)
    assert len(res.races) == 1
    assert res.races[0].kind.value == "read-write"


def test_wait_after_set_does_not_block():
    def app(env):
        env.barrier()
        if env.pid == 0:
            env.set_event(9)
        env.barrier()
        if env.pid == 1:
            env.wait_event(9)  # already set: immediate acquire
        env.barrier()
        return True

    res = run_app(app, nprocs=2)
    assert all(res.results)


def test_multiple_waiters_all_released_and_ordered():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 0:
            env.store(x, 7)
            env.set_event(2)
            return None
        env.wait_event(2)
        return env.load(x)

    res = run_app(app, nprocs=4)
    assert res.results[1:] == [7, 7, 7]
    assert res.races == []


def test_double_set_rejected():
    def app(env):
        env.set_event(1)

    with pytest.raises(Exception) as exc:
        run_app(app, nprocs=2)
    assert isinstance(exc.value.original, SynchronizationError)


def test_wait_never_set_deadlocks():
    def app(env):
        if env.pid == 0:
            env.wait_event(5)

    with pytest.raises(DeadlockError):
        run_app(app, nprocs=2)


def test_event_chain_transitive_ordering():
    """P0 -> (event 1) -> P1 -> (event 2) -> P2: transitivity of
    happens-before-1 through two different events."""
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 0:
            env.store(x, 1)
            env.set_event(1)
        elif env.pid == 1:
            env.wait_event(1)
            env.store(x, env.load(x) + 1)
            env.set_event(2)
        elif env.pid == 2:
            env.wait_event(2)
            return env.load(x)
        return None

    res = run_app(app, nprocs=3)
    assert res.results[2] == 2
    assert res.races == []


def test_event_agrees_with_oracle():
    def app(env):
        x = env.malloc(2, name="x")
        env.barrier()
        if env.pid == 0:
            env.store(x, 1)        # ordered by the event
            env.store(x + 1, 1)    # racy: P1 writes it unsynchronized
            env.set_event(3)
        else:
            env.store(x + 1, 2)
            env.wait_event(3)
            env.load(x)
        return None

    system, res = run_app_with_system(app, nprocs=2,
                                      track_access_trace=True)
    from repro.core.baseline import HappensBeforeDetector
    oracle = HappensBeforeDetector(system.store.vc_log).races(
        res.access_trace)
    assert online_race_keys(res) == oracle
    assert {addr for _k, addr, _s in oracle} == {1}  # only x+1 races
