"""Vector clocks: ordering semantics and lattice laws (hypothesis)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsm.vector_clock import VectorClock, concurrent, precedes

vectors = st.lists(st.integers(min_value=0, max_value=20),
                   min_size=1, max_size=6)


def test_zero_and_tick():
    vc = VectorClock.zero(4)
    assert list(vc.entries) == [0, 0, 0, 0]
    assert vc.tick(2) == 1
    assert vc[2] == 1
    assert vc.tick(2) == 2


def test_negative_entries_rejected():
    with pytest.raises(ValueError):
        VectorClock([1, -1])


def test_observe_elementwise_max():
    a = VectorClock([3, 0, 5])
    b = VectorClock([1, 4, 2])
    a.observe(b)
    assert a.entries == [3, 4, 5]


def test_observe_width_mismatch():
    with pytest.raises(ValueError):
        VectorClock([1, 2]).observe(VectorClock([1, 2, 3]))


def test_copy_is_independent():
    a = VectorClock([1, 2])
    b = a.copy()
    b.tick(0)
    assert a[0] == 1 and b[0] == 2


def test_precedes_basic():
    # Interval 2 of P0; an observer that has seen P0 up to 2.
    assert precedes(0, 2, VectorClock([2, 9]))
    assert precedes(0, 2, VectorClock([5, 0]))
    assert not precedes(0, 2, VectorClock([1, 9]))


def test_concurrent_symmetry_and_program_order():
    va = VectorClock([3, 0])
    vb = VectorClock([0, 4])
    assert concurrent(0, 3, va, 1, 4, vb)
    assert concurrent(1, 4, vb, 0, 3, va)
    # Same process: never concurrent regardless of vectors.
    assert not concurrent(0, 3, va, 0, 4, vb)


def test_ordered_intervals_not_concurrent():
    # P1's interval 4 has seen P0's interval 3.
    va = VectorClock([3, 0])
    vb = VectorClock([3, 4])
    assert not concurrent(0, 3, va, 1, 4, vb)


@given(vectors, vectors)
def test_dominates_iff_pointwise(xs, ys):
    n = min(len(xs), len(ys))
    a, b = VectorClock(xs[:n]), VectorClock(ys[:n])
    assert a.dominates(b) == all(x >= y for x, y in zip(a.entries, b.entries))


@given(vectors)
def test_observe_idempotent(xs):
    a = VectorClock(xs)
    before = list(a.entries)
    a.observe(VectorClock(before))
    assert a.entries == before


@given(vectors, vectors, vectors)
def test_observe_associative_commutative(xs, ys, zs):
    n = min(len(xs), len(ys), len(zs))
    xs, ys, zs = xs[:n], ys[:n], zs[:n]

    def merged(order):
        acc = VectorClock(order[0])
        for other in order[1:]:
            acc.observe(VectorClock(other))
        return acc.entries

    assert merged([xs, ys, zs]) == merged([zs, ys, xs]) == merged([ys, xs, zs])


@given(vectors)
def test_hash_eq_consistent(xs):
    a, b = VectorClock(xs), VectorClock(list(xs))
    assert a == b and hash(a) == hash(b)


@given(st.data())
def test_concurrency_antisymmetric_with_happens_before(data):
    """If a precedes b then they are not concurrent, and b does not
    precede a unless the clocks are inconsistent by construction."""
    n = data.draw(st.integers(min_value=2, max_value=5))
    ia = data.draw(st.integers(min_value=1, max_value=10))
    ib = data.draw(st.integers(min_value=1, max_value=10))
    rest_a = data.draw(st.lists(st.integers(min_value=0, max_value=10),
                                min_size=n, max_size=n))
    rest_b = data.draw(st.lists(st.integers(min_value=0, max_value=10),
                                min_size=n, max_size=n))
    rest_a[0], rest_b[1] = ia, ib
    va, vb = VectorClock(rest_a), VectorClock(rest_b)
    if precedes(0, ia, vb) or precedes(1, ib, va):
        assert not concurrent(0, ia, va, 1, ib, vb)
    else:
        assert concurrent(0, ia, va, 1, ib, vb)
