"""Lazy-release-consistency semantics: staleness, invalidation timing.

These tests pin down the *weak memory* behaviour the paper's detection
story depends on: writes propagate only through synchronization; an
unsynchronized reader may see stale data (which is exactly what makes the
Figure 5 example interesting, §6.4)."""

import pytest

from tests.helpers import run_app, run_app_with_system, small_config

from repro.dsm.page import PageState


def test_unsynchronized_reader_can_see_stale_value():
    """P1 caches a page, P0 overwrites it with no synchronization: P1's
    subsequent read returns the cached (stale) value — LRC at work."""
    def app(env):
        x = env.malloc(1, name="x")
        if env.pid == 0:
            env.store(x, 1)
        env.barrier()
        if env.pid == 1:
            env.load(x)          # populate P1's copy (value 1)
        env.barrier()
        stale = None
        if env.pid == 0:
            env.store(x, 2)      # no release follows before P1's read
        else:
            stale = env.load(x)  # unsynchronized: may (and does) read 1
        env.barrier()
        return stale

    res = run_app(app, nprocs=2)
    assert res.results[1] == 1  # stale!
    # ... and the detector reports the read-write race that made it stale.
    assert any(r.kind.value == "read-write" for r in res.races)


def test_acquire_invalidates_and_fetches_fresh_value():
    def app(env):
        x = env.malloc(1, name="x")
        if env.pid == 0:
            env.store(x, 1)
        env.barrier()
        if env.pid == 1:
            env.load(x)
        env.barrier()
        out = None
        if env.pid == 0:
            with env.locked(1):
                env.store(x, 2)
        env.barrier()  # orders the critical sections across the test
        if env.pid == 1:
            with env.locked(1):
                out = env.load(x)   # acquire applied the write notice
        env.barrier()
        return out

    res = run_app(app, nprocs=2)
    assert res.results[1] == 2


def test_write_notice_does_not_invalidate_owner():
    def app(env):
        x = env.malloc(1, name="x")
        if env.pid == 0:
            env.store(x, 41)
        env.barrier()
        if env.pid == 0:
            return env.load(x)  # owner's copy stays valid through barrier
        return None

    system, res = run_app_with_system(app, nprocs=2)
    assert res.results[0] == 41


def test_per_interval_write_notices_via_reprotection():
    """Writing the same page in two different epochs produces a write
    notice in each: pages are re-protected at interval boundaries.  If
    the second epoch's write escaped notice generation, P1's cached copy
    would never be invalidated and it would still read 1 at the end."""
    def app(env):
        x = env.malloc(1, name="x")
        if env.pid == 0:
            env.store(x, 1)
        env.barrier()                        # B1
        first = env.load(x)                  # P1 caches the page (value 1)
        env.barrier()                        # B2
        if env.pid == 0:
            env.store(x, 2)                  # same page, new epoch
        env.barrier()                        # B3: must carry a new notice
        second = env.load(x)
        env.barrier()
        return (first, second)

    res = run_app(app, nprocs=2)
    assert res.results == [(1, 2), (1, 2)]


def test_ownership_transfer_on_remote_write():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 0:
            env.store(x, 10)
        env.barrier()
        if env.pid == 1:
            env.store(x, 20)  # ownership moves to P1
        env.barrier()
        return env.load(x)

    system, res = run_app_with_system(app, nprocs=2)
    assert res.results == [20, 20]
    page = system.segment.page_of(system.segment.lookup("x").addr)
    assert system.directory.owner_of(page) == 1


def test_soft_fault_cheaper_than_hard_fault():
    cfg = small_config(nprocs=1)
    from repro.dsm.cvm import CVM

    def app(env):
        x = env.malloc(1, name="x")
        env.store(x, 1)   # hard path (first materialization)
        env.barrier()
        env.store(x, 2)   # soft fault: still owner, local RO copy

    system = CVM(cfg)
    system.run(app)
    assert system.protocol.soft_faults >= 1
