"""Synchronization-object state holders (pure state, no protocol)."""

import pytest

from repro.dsm.sync import BarrierState, EventState, GrantInfo, LockState
from repro.dsm.vector_clock import VectorClock
from repro.errors import ReproError, SynchronizationError


def test_lock_state_initial():
    st = LockState(7, manager=3)
    assert st.holder is None
    assert not st.queue
    assert st.last_releaser is None
    assert st.acquires == 0 and st.contended == 0


def test_grant_info_fields():
    g = GrantInfo(releaser=2, release_vc=VectorClock([1, 2]),
                  arrival_time=123.0)
    assert g.releaser == 2 and g.arrival_time == 123.0


def test_barrier_arrival_counting():
    bar = BarrierState(3)
    assert not bar.arrive(0, 10.0)
    assert not bar.arrive(2, 20.0)
    assert bar.arrive(1, 15.0)  # last one in
    assert bar.arrival_times == {0: 10.0, 2: 20.0, 1: 15.0}


def test_barrier_double_arrival_rejected():
    bar = BarrierState(2)
    bar.arrive(0, 1.0)
    with pytest.raises(SynchronizationError):
        bar.arrive(0, 2.0)


def test_barrier_double_arrival_catchable_as_repro_error():
    # The whole point of the SynchronizationError fix: callers catching the
    # package root exception see barrier misuse too.
    bar = BarrierState(2)
    bar.arrive(1, 1.0)
    with pytest.raises(ReproError, match="arrived twice"):
        bar.arrive(1, 2.0)


def test_barrier_death_declaration_bookkeeping():
    bar = BarrierState(3)
    bar.declare_dead(2)
    assert bar.dead_this_generation == {2}
    assert bar.deaths_declared == 1
    bar.arrive(0, 1.0)
    bar.arrive(1, 2.0)
    bar.arrive(2, 9.0)
    bar.reset_for_next_generation()
    assert bar.dead_this_generation == set()
    assert bar.deaths_declared == 1  # cumulative counter survives reset
    with pytest.raises(SynchronizationError, match="master"):
        bar.declare_dead(0)


def test_barrier_generation_reset():
    bar = BarrierState(2)
    bar.arrive(0, 1.0)
    bar.arrive(1, 2.0)
    bar.reset_for_next_generation()
    assert bar.generation == 1
    assert bar.barriers_completed == 1
    assert bar.arrived == []
    # Reusable immediately.
    assert not bar.arrive(1, 3.0)


def test_event_state_initial():
    ev = EventState(4)
    assert not ev.is_set
    assert ev.setter is None and ev.waiters == []
