"""Interval records: notices, bitmaps, ordering, wire sizes."""

import pytest

from repro.dsm.interval import Interval, intervals_unseen_by
from repro.dsm.vector_clock import VectorClock
from repro.net.message import INT_BYTES, WireSizer


def make_interval(pid=0, index=1, vc=None, epoch=0, psz=16):
    return Interval(pid, index, vc or VectorClock([index, 0]), epoch, psz)


def test_record_read_write_populates_notices_and_bitmaps():
    iv = make_interval()
    iv.record_write(3, 5)
    iv.record_read(2, 0, count=4)
    assert iv.write_pages == {3}
    assert iv.read_pages == {2}
    assert iv.write_bitmaps[3].test(5)
    assert all(iv.read_bitmaps[2].test(i) for i in range(4))
    assert not iv.is_empty


def test_record_without_bitmap():
    iv = make_interval()
    iv.record_write(1, 0, bitmap=False)
    assert iv.write_pages == {1}
    assert 1 not in iv.write_bitmaps


def test_closed_interval_rejects_recording():
    iv = make_interval()
    iv.close()
    with pytest.raises(ValueError):
        iv.record_read(0, 0)


def test_merge_write_bitmap():
    from repro.core.bitmap import Bitmap
    iv = make_interval()
    bm = Bitmap(16)
    bm.set(2)
    iv.merge_write_bitmap(5, bm)
    assert iv.write_bitmaps[5].test(2)
    bm2 = Bitmap(16)
    bm2.set(9)
    iv.merge_write_bitmap(5, bm2)
    assert iv.write_bitmaps[5].test(2) and iv.write_bitmaps[5].test(9)


def test_concurrent_with():
    a = Interval(0, 1, VectorClock([1, 0]), 0, 16)
    b = Interval(1, 1, VectorClock([0, 1]), 0, 16)
    c = Interval(1, 2, VectorClock([1, 2]), 0, 16)  # has seen a
    assert a.concurrent_with(b)
    assert not a.concurrent_with(c)
    assert not a.concurrent_with(Interval(0, 2, VectorClock([2, 0]), 0, 16))


def test_wire_size_read_notices_only_with_detection():
    sizer = WireSizer(2, 16)
    iv = make_interval()
    iv.record_write(1, 0)
    iv.record_read(2, 0)
    iv.record_read(3, 0)
    with_reads = iv.wire_size(sizer, with_read_notices=True)
    without = iv.wire_size(sizer, with_read_notices=False)
    assert with_reads - without == iv.read_notice_wire_size(sizer)
    assert iv.read_notice_wire_size(sizer) == (1 + 2) * INT_BYTES


def test_intervals_unseen_by():
    store = {
        0: {1: make_interval(0, 1), 2: make_interval(0, 2),
            3: make_interval(0, 3)},
        1: {1: make_interval(1, 1)},
    }
    have = VectorClock([1, 0])
    upto = VectorClock([3, 1])
    got = [(iv.pid, iv.index) for iv in intervals_unseen_by(store, have, upto)]
    assert got == [(0, 2), (0, 3), (1, 1)]


def test_intervals_unseen_by_skips_missing_records():
    store = {0: {2: make_interval(0, 2)}}
    got = list(intervals_unseen_by(store, VectorClock([0, 0]),
                                   VectorClock([3, 0])))
    assert [(iv.pid, iv.index) for iv in got] == [(0, 2)]
