"""Lock semantics: mutual exclusion, consistency transfer, errors."""

import pytest

from tests.helpers import run_app, run_app_with_system

from repro.errors import DeadlockError, SynchronizationError


def test_lock_protects_read_modify_write():
    def app(env):
        x = env.malloc(1, name="counter")
        env.barrier()
        for _ in range(5):
            with env.locked(3):
                env.store(x, env.load(x) + 1)
        env.barrier()
        return env.load(x)

    res = run_app(app, nprocs=4)
    assert res.results == [20] * 4
    assert res.races == []  # fully synchronized: no false positives


def test_lock_transfers_latest_values():
    """The acquirer of a lock must see the previous holder's writes even
    without a barrier (consistency data rides the grant)."""
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 0:
            with env.locked(1):
                env.store(x, 99)
        env.barrier()  # order the two critical sections deterministically
        got = None
        if env.pid == 1:
            with env.locked(1):
                got = env.load(x)
        env.barrier()
        return got

    res = run_app(app, nprocs=2)
    assert res.results[1] == 99


def test_unlock_without_holding_rejected():
    def app(env):
        env.unlock(5)

    with pytest.raises(Exception) as exc:
        run_app(app, nprocs=2)
    assert isinstance(exc.value.original, SynchronizationError)


def test_unlock_of_lock_held_by_other_rejected():
    def app(env):
        if env.pid == 0:
            env.lock(7)
        env.barrier()
        if env.pid == 1:
            env.unlock(7)

    with pytest.raises(Exception) as exc:
        run_app(app, nprocs=2)
    assert isinstance(exc.value.original, SynchronizationError)


def test_self_deadlock_detected():
    def app(env):
        env.lock(1)
        env.lock(1)  # recursive acquire is not supported: blocks forever

    with pytest.raises(DeadlockError):
        run_app(app, nprocs=1)


def test_cross_deadlock_detected():
    def app(env):
        if env.pid == 0:
            env.lock(1)
            env.lock(2)
        else:
            env.lock(2)
            env.lock(1)

    with pytest.raises(DeadlockError):
        run_app(app, nprocs=2)


def test_fifo_granting_under_contention():
    def app(env):
        order = env.malloc(16, name="order")
        idx = env.malloc(1, name="idx")
        env.barrier()
        with env.locked(1):
            i = env.load(idx)
            env.store(order + i, env.pid)
            env.store(idx, i + 1)
        env.barrier()
        return env.load_range(order, env.nprocs)

    res = run_app(app, nprocs=4)
    got = res.results[0][:4]
    assert sorted(got) == [0, 1, 2, 3]
    # Every process agrees on the order (coherence through the barrier).
    assert all(r[:4] == got for r in res.results)


def test_lock_acquire_counts():
    system, res = run_app_with_system(_locking_app, nprocs=3)
    # 3 procs x 2 acquires each.
    assert res.lock_acquires == 6


def _locking_app(env):
    x = env.malloc(1, name="x")
    env.barrier()
    for _ in range(2):
        with env.locked(9):
            env.store(x, env.load(x) + 1)
    env.barrier()


def test_many_locks_independent():
    def app(env):
        blocks = env.malloc(4 * 16, name="blocks", page_aligned=True)
        env.barrier()
        # Each process uses its own lock and block: fully independent.
        with env.locked(env.pid):
            env.store(blocks + env.pid * 16, env.pid)
        env.barrier()
        return env.load(blocks + env.pid * 16)

    res = run_app(app, nprocs=4)
    assert res.results == [0, 1, 2, 3]
    assert res.races == []
