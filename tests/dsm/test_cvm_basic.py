"""Basic DSM behaviour: allocation, loads/stores, faults, results."""

import pytest

from tests.helpers import run_app, run_app_with_system, small_config

from repro.dsm.cvm import CVM
from repro.errors import SegmentationFault, SynchronizationError


def test_store_then_load_locally():
    def app(env):
        x = env.malloc(4, name="x")
        env.store(x, 123)
        return env.load(x)

    res = run_app(app, nprocs=1)
    assert res.results == [123]


def test_named_malloc_idempotent_across_processes():
    def app(env):
        return env.malloc(8, name="shared_block")

    res = run_app(app, nprocs=4)
    assert len(set(res.results)) == 1


def test_values_propagate_through_barrier():
    def app(env):
        x = env.malloc(1, name="x")
        if env.pid == 0:
            env.store(x, 77)
        env.barrier()
        return env.load(x)

    res = run_app(app, nprocs=4)
    assert res.results == [77] * 4


def test_fresh_pages_read_zero():
    def app(env):
        x = env.malloc(4, name="x")
        return env.load(x + 2)

    res = run_app(app, nprocs=2)
    assert res.results == [0, 0]


def test_range_ops_roundtrip_across_pages():
    def app(env):
        # Spans several 16-word pages.
        x = env.malloc(50, name="x")
        if env.pid == 0:
            env.store_range(x, list(range(50)))
        env.barrier()
        return env.load_range(x, 50)

    res = run_app(app, nprocs=2)
    assert res.results[0] == list(range(50))
    assert res.results[1] == list(range(50))


def test_floats_supported():
    def app(env):
        x = env.malloc(2, name="x")
        if env.pid == 0:
            env.store(x, 3.25)
        env.barrier()
        return env.load(x)

    res = run_app(app, nprocs=2)
    assert res.results == [3.25, 3.25]


def test_out_of_segment_access_faults():
    def app(env):
        env.load(10 ** 9)

    with pytest.raises(Exception) as exc:
        run_app(app, nprocs=1)
    assert isinstance(exc.value.original, SegmentationFault) or \
        isinstance(exc.value, SegmentationFault)


def test_range_off_end_of_allocation_faults():
    def app(env):
        x = env.malloc(4, name="x")
        env.load_range(x, 5)

    with pytest.raises(Exception) as exc:
        run_app(app, nprocs=1)
    assert "SegmentationFault" in repr(exc.value) or "segmentation" in str(exc.value)


def test_cvm_runs_once_only():
    cfg = small_config(nprocs=1)
    system = CVM(cfg)
    system.run(lambda env: None)
    with pytest.raises(SynchronizationError):
        system.run(lambda env: None)


def test_runresult_basic_fields():
    def app(env):
        x = env.malloc(16, name="x")
        env.store(x + env.pid, env.pid)
        env.barrier()
        env.compute(10)
        env.private_accesses(5)
        return env.pid

    res = run_app(app, nprocs=4)
    assert res.results == [0, 1, 2, 3]
    assert res.runtime_cycles > 0
    assert res.runtime_seconds > 0
    assert res.barriers_completed == 2  # explicit + final implicit
    assert res.intervals_created > 0
    assert res.memory_kbytes == pytest.approx(16 * 8 / 1024)
    assert res.shared_instr_calls >= 4
    assert res.private_instr_calls == 4 * 5


def test_detection_off_counts_nothing():
    def app(env):
        x = env.malloc(4, name="x")
        env.store(x, 1)
        env.private_accesses(10)

    res = run_app(app, nprocs=1, detection=False)
    assert res.shared_instr_calls == 0
    assert res.private_instr_calls == 0
    assert res.races == []
    assert res.detector_stats is None


def test_deterministic_runs_same_seed():
    def app(env):
        x = env.malloc(8, name="x")
        with env.locked(1):
            env.store(x, env.load(x) + env.pid)
        env.barrier()
        return env.load(x)

    a = run_app(app, nprocs=4, policy="random", seed=11)
    b = run_app(app, nprocs=4, policy="random", seed=11)
    assert a.results == b.results
    assert a.runtime_cycles == b.runtime_cycles
    assert a.traffic.total_bytes == b.traffic.total_bytes


def test_symbol_for():
    def app(env):
        x = env.malloc(4, name="my_array")
        return env.symbol_for(x + 2)

    res = run_app(app, nprocs=1)
    assert res.results == ["my_array+2"]
