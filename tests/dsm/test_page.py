"""Page copies and the page directory."""

import pytest

from repro.dsm.page import PageCopy, PageDirectory, PageState


def test_copy_lifecycle():
    copy = PageCopy(3, 16)
    assert copy.state is PageState.INVALID
    assert not copy.valid
    copy.materialize()
    copy.state = PageState.READ_ONLY
    assert copy.valid
    assert copy.data == [0] * 16


def test_materialize_with_contents_copies():
    src = [1, 2, 3, 4]
    copy = PageCopy(0, 4)
    copy.materialize(src)
    src[0] = 99
    assert copy.data[0] == 1


def test_materialize_wrong_length():
    copy = PageCopy(0, 4)
    with pytest.raises(ValueError):
        copy.materialize([1, 2])


def test_twin_management():
    copy = PageCopy(0, 4)
    copy.materialize([1, 2, 3, 4])
    with pytest.raises(ValueError):
        PageCopy(1, 4).make_twin()  # no data yet
    copy.make_twin()
    copy.data[0] = 9
    assert copy.twin == [1, 2, 3, 4]
    copy.drop_twin()
    assert copy.twin is None


def test_directory_round_robin_managers():
    d = PageDirectory(num_pages=10, nprocs=4)
    assert [d.manager_of(p) for p in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_directory_default_owner_is_manager():
    d = PageDirectory(10, 4)
    assert d.owner_of(5) == d.manager_of(5)


def test_directory_owner_updates():
    d = PageDirectory(10, 4)
    d.set_owner(5, 3)
    assert d.owner_of(5) == 3
    with pytest.raises(ValueError):
        d.set_owner(5, 9)
    with pytest.raises(ValueError):
        d.set_owner(99, 0)
    with pytest.raises(ValueError):
        d.owner_of(-1)
