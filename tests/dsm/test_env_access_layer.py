"""The Env access layer: range semantics, tracking granularity, costs."""

import pytest

from tests.helpers import run_app, run_app_with_system

from repro.sim.costmodel import CostCategory


def test_range_race_detected_at_overlapping_words_only():
    """Two range writes overlapping in [8, 12) race exactly there."""
    def app(env):
        x = env.malloc(16, name="x")
        env.barrier()
        if env.pid == 0:
            env.store_range(x, [1] * 12)       # words 0..11
        else:
            env.store_range(x + 8, [2] * 8)    # words 8..15
        env.barrier()

    res = run_app(app, nprocs=2)
    assert sorted(r.addr for r in res.races) == [8, 9, 10, 11]


def test_range_spanning_pages_tracked_per_page():
    def app(env):
        x = env.malloc(40, name="x")   # pages 0..2 with 16-word pages
        env.barrier()
        if env.pid == 0:
            env.store_range(x, list(range(40)))
        else:
            env.load(x + 33)           # one word on the third page
        env.barrier()

    res = run_app(app, nprocs=2)
    assert len(res.races) == 1
    assert res.races[0].addr == 33


def test_empty_ranges_are_noops():
    def app(env):
        x = env.malloc(4, name="x")
        env.store_range(x, [])
        assert env.load_range(x, 0) == []
        return True

    res = run_app(app, nprocs=1)
    assert res.results == [True]


def test_single_word_range_equivalent_to_scalar():
    def app(env):
        x = env.malloc(2, name="x")
        env.store_range(x, [42])
        return env.load(x)

    assert run_app(app, nprocs=1).results == [42]


def test_access_counters_count_words_not_calls():
    def app(env):
        x = env.malloc(32, name="x")
        env.store_range(x, [0] * 32)   # 32 instrumented accesses
        env.load(x)                    # +1

    res = run_app(app, nprocs=1)
    assert res.shared_instr_calls == 33


def test_proc_call_cost_scales_with_words():
    def app(env):
        x = env.malloc(32, name="x")
        env.store_range(x, [0] * 32)

    _sys, res = run_app_with_system(app, nprocs=1)
    ledger = res.aggregate_ledger()
    cm = res.config.cost_model
    assert ledger.totals[CostCategory.PROC_CALL] == \
        pytest.approx(32 * cm.proc_call)
    assert ledger.totals[CostCategory.ACCESS_CHECK] == \
        pytest.approx(32 * cm.access_check_shared)


def test_site_annotation_reaches_reports_via_watch():
    from repro.dsm.cvm import CVM
    from tests.helpers import small_config

    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        env.store(x, env.pid, site="here:42")
        env.barrier()

    cfg = small_config(nprocs=2)
    system = CVM(cfg)
    system.pc_watch = {0: []}
    system.run(app)
    sites = {hit[2] for hit in system.pc_watch[0]}
    assert "here:42" in sites


def test_pause_creates_no_ordering():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 0:
            env.store(x, 1)
        else:
            env.pause(5)
            env.load(x)
        env.barrier()

    res = run_app(app, nprocs=2)
    assert len(res.races) == 1  # pause did not order the accesses


def test_compute_charges_base_only():
    def app(env):
        env.compute(100)

    # With detection off there is no overhead of any kind; with detection
    # on, compute() itself still adds nothing beyond the detector's fixed
    # per-epoch work (no per-unit instrumentation).
    _sys, off = run_app_with_system(app, nprocs=1, detection=False)
    assert off.aggregate_ledger().overhead == pytest.approx(0.0)

    _sys, small = run_app_with_system(app, nprocs=1)
    _sys, large = run_app_with_system(lambda env: env.compute(100_000),
                                      nprocs=1)
    assert large.aggregate_ledger().overhead == \
        pytest.approx(small.aggregate_ledger().overhead)


# ---------------------------------------------------------------------- #
# _page_chunks and the range engines' page-splitting edge cases.
# ---------------------------------------------------------------------- #
def _chunks_reference(addr, count, psz):
    out = []
    for a in range(addr, addr + count):
        page, off = divmod(a, psz)
        if out and out[-1][0] == page:
            page0, off0, length = out[-1]
            out[-1] = (page0, off0, length + 1)
        else:
            out.append((page, off, 1))
    return out


@pytest.mark.parametrize("addr,count", [
    (0, 1), (0, 16), (5, 11), (5, 12), (15, 1), (15, 2),
    (0, 17), (0, 32), (0, 33), (7, 40), (16, 16), (31, 3),
])
def test_page_chunks_match_reference(addr, count):
    def app(env):
        return env._page_chunks(addr, count)

    res = run_app(app, nprocs=1)
    assert res.results[0] == _chunks_reference(addr, count, 16)


def test_page_chunks_single_page_cases():
    """The loop-free single-page case covers exact fits too."""
    def app(env):
        return [env._page_chunks(0, 16),    # exactly one full page
                env._page_chunks(3, 13),    # to the page's last word
                env._page_chunks(16, 1),    # first word of a later page
                env._page_chunks(31, 1)]    # last word of a page

    res = run_app(app, nprocs=1)
    assert res.results[0] == [[(0, 0, 16)], [(0, 3, 13)],
                              [(1, 0, 1)], [(1, 15, 1)]]


def test_store_range_exact_page_multiple_roundtrip():
    def app(env):
        x = env.malloc(48, name="x")      # three full 16-word pages
        env.store_range(x, list(range(48)))
        return env.load_range(x, 48)

    res = run_app(app, nprocs=1)
    assert res.results == [list(range(48))]


def test_store_range_straddling_unaligned_roundtrip():
    def app(env):
        x = env.malloc(64, name="x")
        env.store_range(x + 13, list(range(100, 137)))  # 37 words, 3 pages
        return env.load_range(x + 13, 37)

    res = run_app(app, nprocs=1)
    assert res.results == [list(range(100, 137))]


def test_store_range_accepts_tuple_without_copy():
    """The single-page path assigns the sequence into the page slice
    directly — no intermediate list copy — so any sequence works."""
    def app(env):
        x = env.malloc(16, name="x")
        env.store_range(x + 2, (7, 8, 9))
        return env.load_range(x, 6)

    res = run_app(app, nprocs=1)
    assert res.results == [[0, 0, 7, 8, 9, 0]]


def test_store_range_does_not_mutate_caller_values():
    def app(env):
        x = env.malloc(40, name="x")
        vals = list(range(40))
        env.store_range(x, vals)
        return vals

    res = run_app(app, nprocs=1)
    assert res.results == [list(range(40))]


def test_out_of_segment_range_faults_without_partial_write():
    from repro.errors import ProcessFailure

    def app(env):
        end = env.system.segment.segment_words
        x = env.malloc(8, name="x")
        env.barrier()
        env.store_range(end - 4, [1] * 8)  # runs off the end

    from repro.dsm.cvm import CVM
    from repro.errors import SegmentationFault
    from tests.helpers import small_config
    system = CVM(small_config(nprocs=1))
    with pytest.raises(ProcessFailure) as exc_info:
        system.run(app)
    assert isinstance(exc_info.value.__cause__, SegmentationFault)


@pytest.mark.parametrize("fast", [True, False])
def test_range_engines_agree_on_straddling_contents(fast):
    """Both engines place identical words for a multi-page store; the
    racy overlap lands at the same addresses either way."""
    def app(env):
        x = env.malloc(40, name="x")
        env.barrier()
        if env.pid == 0:
            env.store_range(x + 10, list(range(200, 224)))  # words 10..33
        else:
            env.store_range(x + 30, [5] * 8)                # words 30..37
        env.barrier()

    res = run_app(app, nprocs=2, access_fast_path=fast)
    assert sorted(r.addr for r in res.races) == [30, 31, 32, 33]
