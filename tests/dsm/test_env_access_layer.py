"""The Env access layer: range semantics, tracking granularity, costs."""

import pytest

from tests.helpers import run_app, run_app_with_system

from repro.sim.costmodel import CostCategory


def test_range_race_detected_at_overlapping_words_only():
    """Two range writes overlapping in [8, 12) race exactly there."""
    def app(env):
        x = env.malloc(16, name="x")
        env.barrier()
        if env.pid == 0:
            env.store_range(x, [1] * 12)       # words 0..11
        else:
            env.store_range(x + 8, [2] * 8)    # words 8..15
        env.barrier()

    res = run_app(app, nprocs=2)
    assert sorted(r.addr for r in res.races) == [8, 9, 10, 11]


def test_range_spanning_pages_tracked_per_page():
    def app(env):
        x = env.malloc(40, name="x")   # pages 0..2 with 16-word pages
        env.barrier()
        if env.pid == 0:
            env.store_range(x, list(range(40)))
        else:
            env.load(x + 33)           # one word on the third page
        env.barrier()

    res = run_app(app, nprocs=2)
    assert len(res.races) == 1
    assert res.races[0].addr == 33


def test_empty_ranges_are_noops():
    def app(env):
        x = env.malloc(4, name="x")
        env.store_range(x, [])
        assert env.load_range(x, 0) == []
        return True

    res = run_app(app, nprocs=1)
    assert res.results == [True]


def test_single_word_range_equivalent_to_scalar():
    def app(env):
        x = env.malloc(2, name="x")
        env.store_range(x, [42])
        return env.load(x)

    assert run_app(app, nprocs=1).results == [42]


def test_access_counters_count_words_not_calls():
    def app(env):
        x = env.malloc(32, name="x")
        env.store_range(x, [0] * 32)   # 32 instrumented accesses
        env.load(x)                    # +1

    res = run_app(app, nprocs=1)
    assert res.shared_instr_calls == 33


def test_proc_call_cost_scales_with_words():
    def app(env):
        x = env.malloc(32, name="x")
        env.store_range(x, [0] * 32)

    _sys, res = run_app_with_system(app, nprocs=1)
    ledger = res.aggregate_ledger()
    cm = res.config.cost_model
    assert ledger.totals[CostCategory.PROC_CALL] == \
        pytest.approx(32 * cm.proc_call)
    assert ledger.totals[CostCategory.ACCESS_CHECK] == \
        pytest.approx(32 * cm.access_check_shared)


def test_site_annotation_reaches_reports_via_watch():
    from repro.dsm.cvm import CVM
    from tests.helpers import small_config

    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        env.store(x, env.pid, site="here:42")
        env.barrier()

    cfg = small_config(nprocs=2)
    system = CVM(cfg)
    system.pc_watch = {0: []}
    system.run(app)
    sites = {hit[2] for hit in system.pc_watch[0]}
    assert "here:42" in sites


def test_pause_creates_no_ordering():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 0:
            env.store(x, 1)
        else:
            env.pause(5)
            env.load(x)
        env.barrier()

    res = run_app(app, nprocs=2)
    assert len(res.races) == 1  # pause did not order the accesses


def test_compute_charges_base_only():
    def app(env):
        env.compute(100)

    # With detection off there is no overhead of any kind; with detection
    # on, compute() itself still adds nothing beyond the detector's fixed
    # per-epoch work (no per-unit instrumentation).
    _sys, off = run_app_with_system(app, nprocs=1, detection=False)
    assert off.aggregate_ledger().overhead == pytest.approx(0.0)

    _sys, small = run_app_with_system(app, nprocs=1)
    _sys, large = run_app_with_system(lambda env: env.compute(100_000),
                                      nprocs=1)
    assert large.aggregate_ledger().overhead == \
        pytest.approx(small.aggregate_ledger().overhead)
