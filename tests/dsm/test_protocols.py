"""Single-writer vs multi-writer protocol behaviour."""

import pytest

from tests.helpers import run_app, run_app_with_system

from repro.dsm.config import DsmConfig


def _false_sharing_app(env):
    """Every process writes its own word of one page, unsynchronized."""
    x = env.malloc(16, name="x")
    env.barrier()
    env.store(x + env.pid, 100 + env.pid)
    env.barrier()
    return env.load_range(x, env.nprocs)


@pytest.mark.parametrize("protocol", ["sw", "mw"])
def test_false_sharing_final_values(protocol):
    """With barrier-separated readback, both protocols must converge —
    the multi-writer protocol merges concurrent same-page writes via
    diffs; the single-writer protocol serializes through ownership."""
    res = run_app(_false_sharing_app, nprocs=4, protocol=protocol)
    # Both protocols merge disjoint-word writes: the multi-writer protocol
    # through diffs, the single-writer protocol because every ownership
    # transfer ships the current page contents (ping-pong, not clobber).
    assert res.results[0][:4] == [100, 101, 102, 103]
    assert all(r == res.results[0] for r in res.results)
    # Different words -> no data race, in either protocol.
    assert res.races == []


@pytest.mark.parametrize("protocol", ["sw", "mw"])
def test_synchronized_updates_identical(protocol):
    def app(env):
        x = env.malloc(1, name="c")
        env.barrier()
        for _ in range(3):
            with env.locked(1):
                env.store(x, env.load(x) + 1)
        env.barrier()
        return env.load(x)

    res = run_app(app, nprocs=4, protocol=protocol)
    assert res.results == [12] * 4
    assert res.races == []


def test_mw_home_copy_kept_valid():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 1:
            with env.locked(1):
                env.store(x, 5)
        env.barrier()
        return env.load(x)

    system, res = run_app_with_system(app, nprocs=2, protocol="mw")
    assert res.results == [5, 5]


def test_mw_diff_write_detection_finds_race():
    """§6.5: with diff-derived write detection, stores are not
    instrumented at all, yet write-write races are still found."""
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        env.store(x, env.pid + 1)  # all procs write x: racy
        env.barrier()

    res = run_app(app, nprocs=3, protocol="mw", diff_write_detection=True)
    assert any(r.kind.value == "write-write" for r in res.races)
    # Stores were not instrumented: no shared analysis calls for them.
    assert res.shared_instr_calls == 0


def test_mw_diff_write_detection_misses_same_value_overwrite():
    """§6.5's weaker guarantee, demonstrated end to end: overwriting a
    word with the value it already holds produces an empty diff, so the
    write-write race goes undetected in diff mode..."""
    def app(env):
        x = env.malloc(1, name="x")
        if env.pid == 0:
            env.store(x, 7)  # x already holds 7...
        env.barrier()
        env.load(x)          # everyone caches the page holding 7
        env.barrier()
        env.store(x, 7)      # ...and every process overwrites it with 7
        env.barrier()

    diff_mode = run_app(app, nprocs=3, protocol="mw",
                        diff_write_detection=True)
    assert diff_mode.races == []  # missed!
    # ... while instrumented store tracking catches it.
    instrumented = run_app(app, nprocs=3, protocol="mw",
                           diff_write_detection=False)
    assert any(r.kind.value == "write-write" for r in instrumented.races)


def test_diff_write_detection_requires_mw():
    with pytest.raises(ValueError):
        DsmConfig(protocol="sw", diff_write_detection=True)


def test_mw_concurrent_writers_both_preserved():
    """Two processes write disjoint halves of one page between barriers;
    the home merges both diffs."""
    def app(env):
        x = env.malloc(16, name="x")
        env.barrier()
        if env.pid == 0:
            env.store_range(x, [1] * 8)
        else:
            env.store_range(x + 8, [2] * 8)
        env.barrier()
        return env.load_range(x, 16)

    res = run_app(app, nprocs=2, protocol="mw")
    assert res.results[0] == [1] * 8 + [2] * 8
    assert res.results[1] == [1] * 8 + [2] * 8
    assert res.races == []
