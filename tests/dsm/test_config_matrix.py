"""DsmConfig flag-conflict matrix.

Every illegal flag combination must be rejected at construction with a
:class:`~repro.errors.ConfigError` whose message names the conflicting
flags — a user who composed two features that cannot compose should be
told *which two*, not handed a traceback from three layers down.  The
matrix axes: mode × crash injection × resume × trace-file × sharding ×
failover (plus the scalar guards the CLI exposes).
"""

import pytest

from repro.dsm.config import DsmConfig
from repro.errors import ConfigError

# (description, config kwargs, [substrings the error must name])
CONFLICTS = [
    ("record without trace file",
     dict(mode="record"),
     ["--mode record", "--trace-file"]),
    ("detect-offline without trace file",
     dict(mode="detect-offline"),
     ["--mode detect-offline", "--trace-file"]),
    ("trace file with online mode",
     dict(trace_file="/tmp/t.log"),
     ["--trace-file", "online"]),
    ("unknown mode",
     dict(mode="turbo"),
     ["--mode", "turbo"]),
    ("record with random crashes",
     dict(mode="record", trace_file="/tmp/t.log", crash_rate=0.01),
     ["--mode record", "--crash-rate"]),
    ("record with scheduled crash",
     dict(mode="record", trace_file="/tmp/t.log", crash_at=((1, 0),)),
     ["--mode record", "--crash-at"]),
    ("detect-offline with random crashes",
     dict(mode="detect-offline", trace_file="/tmp/t.log",
          crash_rate=0.01),
     ["--mode detect-offline", "--crash-rate"]),
    ("detect-offline with scheduled crash",
     dict(mode="detect-offline", trace_file="/tmp/t.log",
          crash_at=((1, 0),)),
     ["--mode detect-offline", "--crash-at"]),
    ("record with resume",
     dict(mode="record", trace_file="/tmp/t.log", resume_from="/tmp/ck"),
     ["--mode record", "--resume-from"]),
    ("detect-offline with resume",
     dict(mode="detect-offline", trace_file="/tmp/t.log",
          resume_from="/tmp/ck"),
     ["--mode detect-offline", "--resume-from"]),
    ("shard cap without sharding",
     dict(detection_shards=2),
     ["--detection-shards", "--sharded-detection"]),
    ("master crash without failover",
     dict(crash_at=((0, 1),), nprocs=4),
     ["--crash-at", "--master-failover"]),
]


@pytest.mark.parametrize(
    "kwargs,must_name",
    [c[1:] for c in CONFLICTS], ids=[c[0] for c in CONFLICTS])
def test_conflicts_raise_config_error_naming_both_flags(kwargs, must_name):
    with pytest.raises(ConfigError) as exc_info:
        DsmConfig(**kwargs)
    message = str(exc_info.value)
    for flag in must_name:
        assert flag in message, \
            f"error message {message!r} does not name {flag!r}"


@pytest.mark.parametrize(
    "kwargs,must_name",
    [c[1:] for c in CONFLICTS], ids=[c[0] for c in CONFLICTS])
def test_conflicts_also_catchable_as_value_error(kwargs, must_name):
    # ConfigError subclasses ValueError: broad validators keep working.
    with pytest.raises(ValueError):
        DsmConfig(**kwargs)


LEGAL = [
    ("record with trace",
     dict(mode="record", trace_file="/tmp/t.log")),
    ("detect-offline with trace",
     dict(mode="detect-offline", trace_file="/tmp/t.log")),
    ("record over a lossy network",
     dict(mode="record", trace_file="/tmp/t.log", loss_rate=0.05)),
    ("record with sharding flags",
     dict(mode="record", trace_file="/tmp/t.log",
          sharded_detection=True, detection_shards=2)),
    ("detect-offline with failover",
     dict(mode="detect-offline", trace_file="/tmp/t.log",
          master_failover=True)),
    ("crashes with failover targeting master",
     dict(crash_at=((0, 1),), master_failover=True, nprocs=4)),
    ("sharding with cap",
     dict(sharded_detection=True, detection_shards=3)),
    ("online with deadline",
     dict(deadline_seconds=5.0)),
    ("record with checkpointing",
     dict(mode="record", trace_file="/tmp/t.log", checkpoint=True)),
]


@pytest.mark.parametrize(
    "kwargs", [c[1] for c in LEGAL], ids=[c[0] for c in LEGAL])
def test_legal_compositions_construct(kwargs):
    cfg = DsmConfig(**kwargs)
    assert cfg.nprocs >= 1


def test_record_mode_forces_detection_off():
    cfg = DsmConfig(mode="record", trace_file="/tmp/t.log",
                    detection=True)
    assert cfg.detection is False


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_deadline_must_be_positive(bad):
    with pytest.raises(ValueError, match="--deadline"):
        DsmConfig(deadline_seconds=bad)
