"""Barrier semantics: epochs, clock reconciliation, interval structure."""

from tests.helpers import run_app, run_app_with_system


def test_barrier_orders_all_accesses():
    """Writes before a barrier are never racy with reads after it."""
    def app(env):
        x = env.malloc(16, name="x")
        env.store(x + env.pid, env.pid)
        env.barrier()
        total = sum(env.load(x + p) for p in range(env.nprocs))
        env.barrier()
        return total

    res = run_app(app, nprocs=4)
    assert res.results == [0 + 1 + 2 + 3] * 4
    # x+0..3 written by different procs on one page: concurrent intervals
    # with page overlap (false sharing), but disjoint words: NO race.
    assert res.races == []


def test_barrier_only_app_has_two_intervals_per_barrier():
    """Table 1: barrier-only applications create exactly two interval
    structures per process per barrier."""
    def app(env):
        x = env.malloc(4, name="x")
        for _ in range(5):
            env.store(x + env.pid % 4, env.pid)
            env.barrier()

    res = run_app(app, nprocs=4)
    assert res.intervals_per_barrier == 2.0


def test_barrier_reconciles_clocks():
    def app(env):
        env.compute(1000 * (env.pid + 1))  # asymmetric work
        env.barrier()
        return env.pid

    system, res = run_app_with_system(app, nprocs=4)
    # After the final barrier everyone's clock has been advanced to at
    # least the slowest process's compute time: the barrier release
    # carried the laggard's arrival time to everyone.
    slowest_work = 4000 * system.config.cost_model.compute_unit
    clocks = [n.clock.now for n in system.nodes]
    assert all(c >= slowest_work for c in clocks)


def test_epoch_advances_per_barrier():
    def app(env):
        env.barrier()
        env.barrier()
        env.barrier()

    system, res = run_app_with_system(app, nprocs=2)
    assert res.barriers_completed == 4  # 3 explicit + final implicit
    assert system.epoch == 4


def test_interval_store_garbage_collected():
    """Checked epochs are discarded (§6.4: trace information is dropped
    once checked) — the store does not grow with barrier count."""
    def app(env):
        x = env.malloc(4, name="x")
        for _ in range(10):
            env.store(x + env.pid % 4, 1)
            env.barrier()

    system, _res = run_app_with_system(app, nprocs=2)
    # Only the last epoch's stragglers may remain.
    assert system.store.live_records() <= 3 * system.config.nprocs


def test_single_process_barrier_trivial():
    def app(env):
        env.barrier()
        env.barrier()
        return "ok"

    res = run_app(app, nprocs=1)
    assert res.results == ["ok"]


def test_reuse_across_generations_heavy():
    def app(env):
        x = env.malloc(1, name="x")
        for i in range(20):
            if env.pid == i % env.nprocs:
                env.store(x, i)
            env.barrier()
            assert env.load(x) == i
            env.barrier()
        return True

    res = run_app(app, nprocs=3)
    assert all(res.results)
