"""Twin/diff machinery, including the §6.5 write-detection weakness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsm.diff import apply_diff, create_diff, diff_to_bitmap

pages = st.lists(st.integers(min_value=-5, max_value=5),
                 min_size=8, max_size=64).filter(lambda x: len(x) % 8 == 0)


def test_create_diff_finds_changes():
    twin = [0, 1, 2, 3]
    cur = [0, 9, 2, 7]
    assert create_diff(twin, cur) == [(1, 9), (3, 7)]


def test_empty_diff_when_identical():
    assert create_diff([1, 2], [1, 2]) == []


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        create_diff([1], [1, 2])


def test_apply_diff_roundtrip():
    twin = [0] * 8
    cur = [0, 5, 0, 0, 7, 0, 0, 1]
    diff = create_diff(twin, cur)
    out = list(twin)
    apply_diff(out, diff)
    assert out == cur


def test_apply_diff_out_of_range():
    with pytest.raises(ValueError):
        apply_diff([0, 0], [(5, 1)])


def test_diff_to_bitmap_sets_changed_words():
    bm = diff_to_bitmap([(1, 9), (6, 2)], 8)
    assert bm.test(1) and bm.test(6)
    assert not bm.test(0) and not bm.test(7)


def test_same_value_overwrite_invisible():
    """The §6.5 caveat: overwriting a word with the same value produces no
    diff entry, so diff-derived write detection misses it."""
    twin = [42, 0]
    cur = [42, 0]  # the program wrote 42 over 42
    diff = create_diff(twin, cur)
    assert diff == []
    assert not diff_to_bitmap(diff, 8).any()


@given(pages, st.data())
def test_roundtrip_property(page, data):
    """apply(twin, create_diff(twin, cur)) == cur for arbitrary edits."""
    edits = data.draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=len(page) - 1),
                  st.integers(min_value=-5, max_value=5)), max_size=10))
    cur = list(page)
    for off, val in edits:
        cur[off] = val
    diff = create_diff(page, cur)
    out = list(page)
    apply_diff(out, diff)
    assert out == cur
    # And the diff is minimal: offsets only where values actually differ.
    assert all(page[off] != val for off, val in diff)
