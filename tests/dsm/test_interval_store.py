"""IntervalStore: epoch views, garbage collection, vc logging."""

from repro.dsm.interval import Interval
from repro.dsm.node import IntervalStore
from repro.dsm.vector_clock import VectorClock


def make(pid, index, epoch=0, writes=()):
    rec = Interval(pid, index, VectorClock([index, 0]), epoch, 16)
    for page in writes:
        rec.record_write(page, 0)
    rec.close()
    return rec


def test_add_and_get():
    store = IntervalStore()
    rec = make(0, 1)
    store.add(rec)
    assert store.get(0, 1) is rec
    assert store.get(0, 2) is None
    assert store.get(9, 1) is None
    assert store.total_created == 1


def test_nonempty_counting():
    store = IntervalStore()
    store.add(make(0, 1))                    # empty
    store.add(make(0, 2, writes=[3]))        # nonempty
    assert store.total_created == 2
    assert store.total_nonempty == 1


def test_epoch_intervals_sorted_and_filtered():
    store = IntervalStore()
    store.add(make(1, 2, epoch=1))
    store.add(make(0, 1, epoch=1))
    store.add(make(0, 2, epoch=2))
    recs = store.epoch_intervals(1)
    assert [(r.pid, r.index) for r in recs] == [(0, 1), (1, 2)]


def test_discard_epoch_counts_and_preserves_totals():
    store = IntervalStore()
    for idx in range(1, 4):
        store.add(make(0, idx, epoch=0))
    store.add(make(0, 4, epoch=1))
    dropped = store.discard_epoch(0)
    assert dropped == 3
    assert store.live_records() == 1
    # Lifetime counters are not rewound by GC.
    assert store.total_created == 4


def test_vc_log_only_when_enabled():
    store = IntervalStore()
    store.log_vc(0, 1, VectorClock([1, 0]))
    assert store.vc_log == {}
    store.log_vcs = True
    vc = VectorClock([1, 0])
    store.log_vc(0, 1, vc)
    assert store.vc_log[(0, 1)] is vc


def test_vc_log_survives_discard():
    store = IntervalStore()
    store.log_vcs = True
    rec = make(0, 1, epoch=0)
    store.add(rec)
    store.log_vc(0, 1, rec.vc)
    store.discard_epoch(0)
    assert store.get(0, 1) is None       # record gone
    assert (0, 1) in store.vc_log        # ordering info retained for oracles
