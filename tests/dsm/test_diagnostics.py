"""Protocol and lock diagnostics exposed through RunResult."""

import pytest

from tests.helpers import run_app


def test_protocol_stats_keys_present():
    def app(env):
        x = env.malloc(4, name="x")
        env.barrier()
        env.store(x, env.pid)
        env.barrier()
        env.load(x)

    res = run_app(app, nprocs=2)
    for key in ("read_faults", "write_faults", "soft_faults",
                "invalidations", "ownership_transfers",
                "diffs_created", "diff_words_moved"):
        assert key in res.protocol_stats
    assert res.protocol_stats["write_faults"] >= 1


def test_sw_counts_ownership_transfers():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 0:
            env.store(x, 1)
        env.barrier()
        if env.pid == 1:
            env.store(x, 2)
        env.barrier()

    res = run_app(app, nprocs=2, protocol="sw")
    assert res.protocol_stats["ownership_transfers"] >= 1
    assert res.protocol_stats["diffs_created"] == 0


def test_mw_counts_diffs():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        with env.locked(1):
            env.store(x, env.pid + 1)
        env.barrier()

    res = run_app(app, nprocs=2, protocol="mw")
    assert res.protocol_stats["diffs_created"] >= 1
    assert res.protocol_stats["diff_words_moved"] >= 1
    assert res.protocol_stats["ownership_transfers"] == 0


def test_invalidations_counted():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        env.load(x)            # everyone caches the page
        env.barrier()
        if env.pid == 0:
            env.store(x, 9)    # notice at next barrier invalidates copies
        env.barrier()
        env.load(x)

    res = run_app(app, nprocs=4)
    assert res.protocol_stats["invalidations"] >= 3


def test_lock_stats_track_contention():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        with env.locked(5):
            env.store(x, env.load(x) + 1)
        env.barrier()

    res = run_app(app, nprocs=4)
    acquires, contended = res.lock_stats[5]
    assert acquires == 4
    assert 0 <= contended < 4


def test_uncontended_private_locks():
    def app(env):
        env.barrier()
        with env.locked(env.pid + 10):
            env.compute(10)
        env.barrier()

    res = run_app(app, nprocs=3)
    for lid in (10, 11, 12):
        acquires, contended = res.lock_stats[lid]
        assert (acquires, contended) == (1, 0)
