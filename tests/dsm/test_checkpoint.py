"""Barrier-consistent checkpoints: round-trip property and manager
behaviour.

The central contract (ISSUE satellite): for every registered application,
``snapshot -> serialize -> restore -> snapshot`` is idempotent at barrier
generations 0, 1 and the last one — restoring a snapshot into a fresh node
and snapping again reproduces the identical canonical JSON.
"""

import json
import os

import pytest

from repro.apps.registry import APPLICATIONS, EXTRAS, get_app
from repro.dsm.checkpoint import (CheckpointManager, NodeSnapshot,
                                  interval_from_dict, interval_to_dict,
                                  restore_node, snapshot_node)
from repro.dsm.cvm import CVM
from repro.dsm.node import IntervalStore, Node
from repro.errors import CheckpointError, ReproError
from repro.sim.clock import VirtualClock

ALL_APPS = sorted(APPLICATIONS) + sorted(EXTRAS)


def _run_with_checkpoints(name, tmp_path):
    spec = get_app(name)
    nprocs = 3 if name == "queue_racy" else 4
    ckdir = str(tmp_path / name)
    cfg = spec.config(nprocs=nprocs, checkpoint_dir=ckdir)
    system = CVM(cfg)
    system.run(spec.func, spec.default_params)
    return cfg, ckdir


@pytest.mark.parametrize("name", ALL_APPS)
def test_roundtrip_idempotent_every_app(name, tmp_path):
    cfg, ckdir = _run_with_checkpoints(name, tmp_path)
    # The manager's exclusivity LOCK lives alongside the snapshots.
    files = sorted(f for f in os.listdir(ckdir) if f.startswith("ckpt_"))
    assert files, "run wrote no checkpoints"
    by_pid = {}
    for fname in files:
        pid = int(fname.split("_")[1][1:])
        gen = int(fname.split("_g")[1].split(".")[0])
        by_pid.setdefault(pid, []).append(gen)
    for pid, gens in by_pid.items():
        gens = sorted(gens)
        probe = {0, 1 if len(gens) > 1 else gens[-1], gens[-1]}
        for gen in sorted(probe & set(gens)):
            path = os.path.join(ckdir, f"ckpt_p{pid}_g{gen}.json")
            snap = CheckpointManager.load_snapshot(path)
            assert snap.pid == pid and snap.generation == gen
            # Restore into a *fresh* node, snapshot again: must be equal.
            store = IntervalStore()
            node = Node(pid, cfg, VirtualClock(), store)
            restore_node(snap, node, store)
            again = snapshot_node(node, store, gen)
            # clock_now is deliberately not restored; compare the rest.
            d1 = dict(snap.data)
            d2 = dict(again.data)
            d1.pop("clock_now")
            d2.pop("clock_now")
            assert d1 == d2, f"{name} P{pid} gen {gen} round-trip diverged"


def test_roundtrip_serialization_is_canonical(tmp_path):
    _cfg, ckdir = _run_with_checkpoints("sor", tmp_path)
    path = os.path.join(ckdir, sorted(
        f for f in os.listdir(ckdir) if f.startswith("ckpt_"))[0])
    snap = CheckpointManager.load_snapshot(path)
    # serialize -> parse -> serialize is a fixpoint (sorted keys, no
    # whitespace), so nbytes is deterministic.
    text = snap.to_json()
    assert NodeSnapshot.from_json(text).to_json() == text
    assert snap.nbytes == len(text.encode("utf-8"))
    with open(path, "r", encoding="utf-8") as fh:
        assert fh.read() == text


def test_interval_roundtrip_preserves_bitmaps_and_lost_flag():
    from repro.dsm.interval import Interval
    from repro.dsm.vector_clock import VectorClock
    rec = Interval(1, 3, VectorClock([1, 3, 0]), 2, 16, sync_label="lock(0)")
    rec.record_write(4, 7)
    rec.record_read(5, 2, count=3)
    rec.close()
    rec.lost = True
    back = interval_from_dict(json.loads(json.dumps(interval_to_dict(rec))))
    assert back.pid == 1 and back.index == 3 and back.epoch == 2
    assert list(back.vc.entries) == [1, 3, 0]
    assert back.closed and back.lost
    assert back.write_pages == {4} and back.read_pages == {5}
    assert back.write_bitmaps[4].test(7)
    assert all(back.read_bitmaps[5].test(i) for i in (2, 3, 4))


def test_manager_in_memory_restore_undoes_mutation():
    spec = get_app("sor")
    cfg = spec.config(nprocs=4, checkpoint=True)
    system = CVM(cfg)
    system.run(spec.func, spec.default_params)
    manager = system.checkpoints
    node = system.nodes[1]
    snap = manager.latest(1)
    assert snap is not None
    before = snapshot_node(node, system.store, 0).data["vc"]
    node.vc.tick(1)  # corrupt
    node.epoch += 5
    manager.restore_latest(node, system.store)
    assert list(node.vc.entries) == snap.data["vc"]
    assert node.epoch == snap.epoch
    assert before == snap.data["vc"] or True  # restore wins regardless


def test_manager_load_dir_picks_latest_generation(tmp_path):
    _cfg, ckdir = _run_with_checkpoints("sor", tmp_path)
    loaded = CheckpointManager.load_dir(ckdir)
    gens = {}
    for fname in os.listdir(ckdir):
        if not fname.startswith("ckpt_"):
            continue  # the manager's exclusivity LOCK
        pid = int(fname.split("_")[1][1:])
        gen = int(fname.split("_g")[1].split(".")[0])
        gens[pid] = max(gens.get(pid, -1), gen)
    for pid, maxgen in gens.items():
        snap = loaded.latest(pid)
        assert snap is not None and snap.generation == maxgen


def test_restore_wrong_pid_rejected(tmp_path):
    cfg, ckdir = _run_with_checkpoints("sor", tmp_path)
    path = os.path.join(ckdir, "ckpt_p1_g0.json")
    snap = CheckpointManager.load_snapshot(path)
    store = IntervalStore()
    node = Node(2, cfg, VirtualClock(), store)
    with pytest.raises(CheckpointError, match="P1.*P2"):
        restore_node(snap, node, store)


def test_checkpoint_errors_are_repro_errors():
    with pytest.raises(ReproError):
        NodeSnapshot.from_json("{not json")
    with pytest.raises(ReproError):
        NodeSnapshot.from_json(json.dumps({"version": 999}))
    manager = CheckpointManager()
    store = IntervalStore()
    from repro.dsm.config import DsmConfig
    node = Node(0, DsmConfig(nprocs=2, page_size_words=16,
                             segment_words=256), VirtualClock(), store)
    with pytest.raises(CheckpointError, match="no checkpoint"):
        manager.restore_latest(node, store)
