"""Shared-segment allocator and symbol resolution."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsm.memory import SharedSegment
from repro.errors import AllocationError, SegmentationFault


def make_segment(words=1024, page=64):
    return SharedSegment(words, page)


def test_basic_allocation_and_lookup():
    seg = make_segment()
    a = seg.malloc(10, name="a")
    b = seg.malloc(20, name="b")
    assert b >= a + 10
    assert seg.lookup("a").addr == a
    assert seg.lookup("b").nwords == 20


def test_page_aligned_allocation():
    seg = make_segment()
    seg.malloc(10)
    aligned = seg.malloc(5, page_aligned=True)
    assert aligned % 64 == 0


def test_duplicate_name_rejected():
    seg = make_segment()
    seg.malloc(4, name="x")
    with pytest.raises(AllocationError):
        seg.malloc(4, name="x")


def test_exhaustion():
    seg = make_segment(words=128, page=64)
    seg.malloc(100)
    with pytest.raises(AllocationError):
        seg.malloc(100)


def test_free_and_reuse():
    seg = make_segment(words=128, page=64)
    a = seg.malloc(100, name="big")
    seg.free(a)
    b = seg.malloc(100, name="big2")
    assert b == a  # hole was coalesced and reused


def test_free_unallocated_rejected():
    seg = make_segment()
    with pytest.raises(AllocationError):
        seg.free(17)


def test_symbol_resolution():
    seg = make_segment()
    a = seg.malloc(10, name="grid")
    assert seg.symbol_for(a) == "grid"
    assert seg.symbol_for(a + 3) == "grid+3"
    assert seg.symbol_for(900).startswith("0x")  # unmapped


def test_block_of_and_check_range():
    seg = make_segment()
    a = seg.malloc(10, name="arr")
    assert seg.block_of(a + 9).name == "arr"
    with pytest.raises(SegmentationFault):
        seg.block_of(a + 10)
    seg.check_range(a, 10)
    with pytest.raises(SegmentationFault):
        seg.check_range(a, 11)


def test_footprint_metrics():
    seg = make_segment()
    seg.malloc(64, name="one")
    seg.malloc(64, name="two")
    assert seg.allocated_words == 128
    assert seg.allocated_kbytes == pytest.approx(128 * 8 / 1024)
    assert seg.high_water_kbytes >= seg.allocated_kbytes


def test_page_arithmetic():
    seg = make_segment(page=64)
    assert seg.page_of(0) == 0
    assert seg.page_of(64) == 1
    assert seg.page_offset(65) == 1


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=40),
                          st.booleans()), min_size=1, max_size=30))
def test_allocations_never_overlap(requests):
    """Property: live allocations are pairwise disjoint and in-bounds,
    across interleaved malloc/free."""
    seg = SharedSegment(4096, 64)
    live = {}
    counter = 0
    for nwords, do_free in requests:
        try:
            addr = seg.malloc(nwords, name=f"n{counter}")
        except AllocationError:
            continue
        live[f"n{counter}"] = (addr, nwords)
        counter += 1
        if do_free and live:
            name, (addr, _n) = next(iter(live.items()))
            seg.free(addr)
            del live[name]
        spans = sorted(live.values())
        for (a1, n1), (a2, _n2) in zip(spans, spans[1:]):
            assert a1 + n1 <= a2
        for a, n in spans:
            assert 0 <= a and a + n <= 4096
