"""Delta checkpoints: round-trip exactness, chain validation, and the
bytes they save.

The contract: ``apply_delta(prev, encode_delta(prev, snap))`` reproduces
``snap``'s canonical JSON exactly; ``load_dir`` replays a delta chain
into the same full snapshots a full-checkpoint directory holds (modulo
``clock_now``, which legitimately differs across *runs* because delta
mode prices fewer checkpoint-write bytes); recovery from delta
checkpoints reproduces the crash-free race report byte-identically; and
the written bytes genuinely shrink.
"""

import os

import pytest

from repro.apps.registry import get_app
from repro.dsm.checkpoint import (CheckpointManager, DeltaSnapshot,
                                  NodeSnapshot, apply_delta, encode_delta,
                                  load_checkpoint)
from repro.errors import CheckpointError
from tests.helpers import run_app_with_system


def _report_lines(result):
    return sorted(str(r) for r in result.races)


def _snapshot_pairs(app_name="water", nprocs=4):
    """Consecutive-generation full snapshots of every node, harvested
    from a real checkpointed run."""
    spec = get_app(app_name)
    import tempfile
    with tempfile.TemporaryDirectory() as d:
        spec.run(nprocs=nprocs, checkpoint_dir=d)
        mgr = CheckpointManager.load_dir(d)
        pairs = []
        for pid, gens in sorted(mgr._history.items()):
            ordered = [gens[g] for g in sorted(gens)]
            pairs.extend(zip(ordered, ordered[1:]))
        return pairs


# ---------------------------------------------------------------------- #
# Round-trip exactness.
# ---------------------------------------------------------------------- #
def test_delta_roundtrip_byte_exact():
    pairs = _snapshot_pairs()
    assert pairs
    for prev, snap in pairs:
        delta = encode_delta(prev, snap)
        rebuilt = apply_delta(prev, delta)
        assert rebuilt.to_json() == snap.to_json()


def test_delta_smaller_than_full():
    pairs = _snapshot_pairs()
    total_delta = sum(encode_delta(p, s).nbytes for p, s in pairs)
    total_full = sum(s.nbytes for _p, s in pairs)
    assert total_delta < total_full


def test_unchanged_components_are_omitted():
    pairs = _snapshot_pairs()
    delta = encode_delta(*pairs[0])
    assert delta.is_delta
    # At least one page survived an epoch untouched on some node, and
    # the encoder omitted it.
    kept = [
        1 for p, s in pairs
        for k in p.data["pages"]
        if k in s.data["pages"]
        and k not in encode_delta(p, s).data["pages"]["set"]]
    assert kept


# ---------------------------------------------------------------------- #
# Chain validation.
# ---------------------------------------------------------------------- #
def test_delta_chain_gap_detected():
    pairs = _snapshot_pairs()
    # Find two pairs on the same pid to splice out a link.
    by_pid = {}
    for prev, snap in pairs:
        by_pid.setdefault(prev.pid, []).append((prev, snap))
    pid, chain = next((p, c) for p, c in by_pid.items() if len(c) >= 2)
    g0_prev, _ = chain[0]
    _, g2_snap = chain[1]
    delta_skipping = encode_delta(chain[1][0], g2_snap)
    with pytest.raises(CheckpointError, match="chain gap"):
        apply_delta(g0_prev, delta_skipping)


def test_delta_base_hash_mismatch_detected():
    pairs = _snapshot_pairs()
    prev, snap = pairs[0]
    delta = encode_delta(prev, snap)
    tampered = dict(prev.data)
    tampered["epoch"] = prev.data["epoch"] + 1000
    fake_base = NodeSnapshot(
        {**tampered, "generation": prev.generation})
    with pytest.raises(CheckpointError, match="base mismatch"):
        apply_delta(fake_base, delta)


def test_delta_wrong_pid_rejected():
    pairs = _snapshot_pairs()
    prev, snap = pairs[0]
    other_prev = next(p for p, _s in pairs if p.pid != prev.pid)
    delta = encode_delta(prev, snap)
    with pytest.raises(CheckpointError):
        apply_delta(other_prev, delta)
    with pytest.raises(CheckpointError):
        encode_delta(other_prev, snap)


def test_delta_cannot_load_standalone(tmp_path):
    pairs = _snapshot_pairs()
    prev, snap = pairs[0]
    delta = encode_delta(prev, snap)
    path = tmp_path / "ckpt_p9_g1.json"
    path.write_text(delta.to_json())
    loaded = load_checkpoint(str(path))
    assert isinstance(loaded, DeltaSnapshot)
    with pytest.raises(CheckpointError, match="load_dir"):
        NodeSnapshot.from_json(delta.to_json())
    # A directory whose chain starts with a delta is rejected outright.
    with pytest.raises(CheckpointError, match="no full base"):
        CheckpointManager.load_dir(str(tmp_path))


# ---------------------------------------------------------------------- #
# Manager behavior end to end.
# ---------------------------------------------------------------------- #
def test_delta_directory_replays_to_full_snapshots(tmp_path):
    full_dir, delta_dir = str(tmp_path / "full"), str(tmp_path / "delta")
    spec = get_app("water")
    free = spec.run(nprocs=4, checkpoint_dir=full_dir)
    dres = spec.run(nprocs=4, checkpoint_dir=delta_dir,
                    checkpoint_delta=True)
    assert _report_lines(free) == _report_lines(dres)
    mf = CheckpointManager.load_dir(full_dir)
    md = CheckpointManager.load_dir(delta_dir)
    for pid in range(4):
        assert sorted(mf._history[pid]) == sorted(md._history[pid])
        for gen in sorted(mf._history[pid]):
            a = dict(mf._history[pid][gen].data)
            b = dict(md._history[pid][gen].data)
            # clock_now alone may differ: delta mode prices fewer
            # checkpoint-write bytes, so virtual clocks advance less.
            a.pop("clock_now"), b.pop("clock_now")
            assert a == b


def test_delta_directory_is_smaller_on_disk(tmp_path):
    full_dir, delta_dir = str(tmp_path / "full"), str(tmp_path / "delta")
    spec = get_app("water")
    free = spec.run(nprocs=4, checkpoint_dir=full_dir)
    dres = spec.run(nprocs=4, checkpoint_dir=delta_dir,
                    checkpoint_delta=True)
    size = lambda d: sum(  # noqa: E731
        os.path.getsize(os.path.join(d, n)) for n in os.listdir(d))
    assert size(delta_dir) < size(full_dir)
    # ... and the priced bytes shrink with the written bytes.
    assert dres.crash_stats.checkpoint_bytes < \
        free.crash_stats.checkpoint_bytes


def test_generation_zero_always_full(tmp_path):
    d = str(tmp_path / "delta")
    get_app("sor").run(nprocs=4, checkpoint_dir=d, checkpoint_delta=True)
    for pid in range(4):
        first = load_checkpoint(os.path.join(d, f"ckpt_p{pid}_g0.json"))
        assert not first.is_delta
        second = load_checkpoint(os.path.join(d, f"ckpt_p{pid}_g1.json"))
        assert second.is_delta


def test_crashy_delta_run_reproduces_crash_free_report():
    spec = get_app("water")
    clean = spec.run(nprocs=4)
    crashy = spec.run(nprocs=4, crash_rate=0.02, crash_seed=3,
                      checkpoint_delta=True)
    assert crashy.crash_stats.crashes > 0
    assert crashy.crash_stats.recoveries_from_checkpoint == \
        crashy.crash_stats.crashes
    assert _report_lines(crashy) == _report_lines(clean)
    assert crashy.unverifiable == []


def test_checkpoint_delta_implies_checkpointing():
    _sys, res = run_app_with_system(
        lambda env: env.barrier(), checkpoint_delta=True)
    assert res.config.checkpointing_enabled
    assert res.crash_stats.checkpoints_written > 0


def test_snapshots_do_not_alias_live_pages():
    """A retained snapshot must freeze barrier-time page contents; the
    node keeps mutating its page lists afterwards (the regression that
    broke delta chains mid-run)."""
    from repro.dsm.cvm import CVM
    from tests.helpers import small_config

    def app(env):
        x = env.malloc(4, name="x")
        env.barrier()           # generation 1 checkpoint
        env.store(x, env.pid + 100)
        env.barrier()

    system = CVM(small_config(nprocs=2, checkpoint=True))
    system.run(app)
    mgr = system.checkpoints
    for pid in range(2):
        snap = mgr.latest(pid)
        text = snap.to_json()
        node = system.nodes[pid]
        for copy in node.pages.values():
            if copy.data is not None:
                copy.data[0] = 424242
        assert snap.to_json() == text
        assert "424242" not in snap.to_json()
