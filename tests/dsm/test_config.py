"""DsmConfig validation."""

import pytest

from repro.dsm.config import DsmConfig


def test_defaults_valid():
    cfg = DsmConfig()
    assert cfg.nprocs == 8
    assert cfg.num_pages == cfg.segment_words // cfg.page_size_words
    assert cfg.detection


@pytest.mark.parametrize("kw", [
    {"nprocs": 0},
    {"page_size_words": 0},
    {"page_size_words": 12},                      # not a multiple of 8
    {"segment_words": 100, "page_size_words": 64},  # not page multiple
    {"protocol": "mesi"},
    {"protocol": "sw", "diff_write_detection": True},
])
def test_invalid_configs_rejected(kw):
    with pytest.raises(ValueError):
        DsmConfig(**kw)


def test_single_process_allowed():
    cfg = DsmConfig(nprocs=1, segment_words=64, page_size_words=64)
    assert cfg.num_pages == 1


def test_cost_model_not_shared_between_instances():
    a, b = DsmConfig(), DsmConfig()
    a.cost_model.proc_call = 1.0
    assert b.cost_model.proc_call != 1.0


def test_policy_strings_accepted_lazily():
    # Policy strings are resolved by the CVM constructor, not the config.
    cfg = DsmConfig(policy="random", seed=7)
    assert cfg.policy == "random" and cfg.seed == 7
