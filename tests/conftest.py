"""Shared pytest fixtures (importable helpers live in tests/helpers.py)."""

from __future__ import annotations

import pytest

from tests.helpers import small_config


@pytest.fixture
def config():
    return small_config()
