"""Two-run racy-access attribution (§6.1)."""

import pytest

from repro.apps.registry import APPLICATIONS
from repro.apps.tsp import TspParams
from repro.apps.water import WaterParams
from repro.replay import attribute_races


def test_tsp_attribution_names_the_racy_sites():
    spec = APPLICATIONS["tsp"]
    params = TspParams(ncities=8)
    cfg = spec.config(nprocs=4)
    report = attribute_races(spec.func, params, cfg)
    assert report.races
    sites = report.sites_for_symbol("tsp_bound")
    assert "tsp.prune:unsynchronized-read" in sites
    assert "tsp.update:locked-write" in sites
    assert report.log_bytes > 0


def test_attribution_survives_different_replay_schedule():
    """The ROLT point: the second run uses a different scheduling seed,
    yet order enforcement makes the racy accesses recur and get sited.

    Water is used because its synchronization control flow is independent
    of its race (the potential-energy sum affects no branches); TSP's
    racy bound reads can change *which* lock acquires occur, so cross-
    schedule replay of TSP may legitimately diverge — the paper's §6.1
    caveat about programs with general races, which is why it proposes
    enforcing the recorded order in the first place and why divergence
    raises :class:`~repro.errors.ReplayError` rather than hanging."""
    spec = APPLICATIONS["water"]
    params = WaterParams(nmol=12, steps=1)
    cfg = spec.config(nprocs=4, policy="random", seed=5)
    cfg2 = spec.config(nprocs=4, policy="random", seed=1234)
    report = attribute_races(spec.func, params, cfg, cfg2)
    assert report.replay_grants > 0
    assert "water.poteng:unsynchronized-write" in \
        report.sites_for_symbol("water_poteng")


def test_water_attribution_finds_the_buggy_sites():
    spec = APPLICATIONS["water"]
    params = WaterParams(nmol=16, steps=1)
    cfg = spec.config(nprocs=4)
    report = attribute_races(spec.func, params, cfg)
    sites = report.sites_for_symbol("water_poteng")
    assert "water.poteng:unsynchronized-write" in sites
    assert "water.poteng:unsynchronized-read" in sites
    # The locked kinetic site never touches the racy word.
    assert "water.kineng:locked-write" not in sites


def test_watch_collects_only_racy_addresses():
    spec = APPLICATIONS["water"]
    params = WaterParams(nmol=12, steps=1)
    cfg = spec.config(nprocs=2)
    report = attribute_races(spec.func, params, cfg)
    racy_addrs = {r.addr for r in report.races}
    assert set(report.sites) == racy_addrs
    # Minimal storage: the watch is per racy word, not per access.
    assert all(hits for hits in report.sites.values())
