"""Two-phase pipeline: ``--mode record`` / ``--mode detect-offline``.

The guarantee under test: a record run executes with detection off and
logs only the synchronization order (lock grant order, barrier arrival
order, sync-message delivery order) to a hash-framed trace, and a replay
run steered by that trace with the full detector on produces race
reports **byte-identical** to a monolithic online run of the same seed
and configuration — for every registered application, at 4 and 16
processes, under lossy networks, and with any detection engine (fast
path, sharded, reference).  The trace framing detects torn or corrupt
files loudly, the config digest in the header refuses traces recorded
under a different execution, and the config layer refuses compositions
the mode cannot honor (crash injection, ``--resume-from``).
"""

import pytest

from repro.apps.registry import APPLICATIONS, EXTRAS, get_app
from repro.dsm.config import DsmConfig
from repro.errors import (ConfigError, ProcessFailure, ReplayError,
                          TraceError)
from repro.replay.trace import (SYNC_TAGS, SyncTrace, execution_digest,
                                load_trace, write_trace)
from repro.sim.costmodel import OVERHEAD_CATEGORIES, CostCategory

ALL_APPS = sorted(APPLICATIONS) + sorted(EXTRAS)


def record_and_replay(app, tmp_path, nprocs=4, replay_overrides=None,
                      **overrides):
    """Run the full pipeline: record to a trace under ``tmp_path``, then
    replay it.  ``overrides`` apply to both runs (they shape the
    execution); ``replay_overrides`` only to the replay run (detection-
    side knobs the digest deliberately ignores)."""
    spec = get_app(app)
    if app == "queue_racy":
        nprocs = 3
    trace_path = str(tmp_path / f"{app}.trace")
    recorded = spec.run(nprocs=nprocs, mode="record",
                        trace_file=trace_path, **overrides)
    replayed = spec.run(nprocs=nprocs, mode="detect-offline",
                        trace_file=trace_path,
                        **{**overrides, **(replay_overrides or {})})
    return recorded, replayed, trace_path


def online_run(app, nprocs=4, **overrides):
    if app == "queue_racy":
        nprocs = 3
    return get_app(app).run(nprocs=nprocs, **overrides)


def assert_identical_reports(offline, online):
    """The byte-identity contract: report strings in order, dedup keys,
    unverifiable entries, and the whole DetectorStats."""
    assert [str(r) for r in offline.races] == [str(r) for r in online.races]
    assert ([r.key() for r in offline.races]
            == [r.key() for r in online.races])
    assert ([str(e) for e in offline.unverifiable]
            == [str(e) for e in online.unverifiable])
    assert offline.detector_stats == online.detector_stats


# ---------------------------------------------------------------------- #
# Equivalence: every registered app, 4 and 16 processes.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("app", ALL_APPS)
def test_replay_matches_online_4_procs(app, tmp_path):
    recorded, replayed, _ = record_and_replay(app, tmp_path, nprocs=4)
    assert_identical_reports(replayed, online_run(app, nprocs=4))
    assert recorded.record_stats["entries_recorded"] > 0
    assert (replayed.record_stats["deliveries_verified"]
            == recorded.record_stats["deliveries"])


@pytest.mark.parametrize("app", ALL_APPS)
def test_replay_matches_online_16_procs(app, tmp_path):
    _, replayed, _ = record_and_replay(app, tmp_path, nprocs=16)
    assert_identical_reports(replayed, online_run(app, nprocs=16))


# ---------------------------------------------------------------------- #
# Equivalence: lossy networks (post-retransmit delivery order).
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("app,faults", [
    ("water", dict(loss_rate=0.05, fault_seed=7)),
    ("fft", dict(loss_rate=0.02, duplicate_rate=0.05,
                 reorder_rate=0.03, fault_seed=11)),
    ("tsp", dict(loss_rate=0.03, fault_seed=5)),
])
def test_replay_matches_online_lossy(app, faults, tmp_path):
    """The trace records what was actually *delivered* — once per logical
    message after every fragment and retransmission — so a lossy record
    run replays exactly like a lossy online run of the same fault seed."""
    recorded, replayed, _ = record_and_replay(app, tmp_path, **faults)
    assert_identical_reports(replayed, online_run(app, **faults))
    assert recorded.traffic.drops > 0


def test_replay_with_sharded_detector(tmp_path):
    """The detection engine is the replay run's choice: a sharded replay
    still matches the centralized online run (the digest deliberately
    excludes detection-side fields)."""
    _, replayed, _ = record_and_replay(
        "tsp", tmp_path, nprocs=8,
        replay_overrides=dict(sharded_detection=True))
    assert_identical_reports(replayed, online_run("tsp", nprocs=8))
    assert replayed.sharding_stats.epochs_sharded > 0


def test_replay_with_reference_detector(tmp_path):
    _, replayed, _ = record_and_replay(
        "tsp", tmp_path,
        replay_overrides=dict(detector_fast_path=False))
    assert_identical_reports(replayed, online_run("tsp", nprocs=4))


def test_replay_first_races_only(tmp_path):
    _, replayed, _ = record_and_replay("water", tmp_path,
                                       first_races_only=True)
    assert_identical_reports(
        replayed, online_run("water", first_races_only=True))


# ---------------------------------------------------------------------- #
# Record-run properties and accounting.
# ---------------------------------------------------------------------- #
def test_record_run_detects_nothing_and_sends_no_detection_traffic(tmp_path):
    recorded, _, _ = record_and_replay("water", tmp_path)
    assert recorded.races == []
    assert recorded.detector_stats is None
    assert not recorded.config.detection
    tags = set(recorded.traffic.messages_by_tag)
    assert not any(t.startswith(("bitmap_", "shard_")) for t in tags)
    assert "detect_shard" not in tags
    assert recorded.traffic.read_notice_bytes == 0


def test_record_cost_priced_outside_overhead(tmp_path):
    recorded, replayed, _ = record_and_replay("sor", tmp_path)
    assert CostCategory.RECORD not in OVERHEAD_CATEGORIES
    assert recorded.aggregate_ledger().totals[CostCategory.RECORD] > 0
    # ... and never charged on replay or online runs:
    assert replayed.aggregate_ledger().totals[CostCategory.RECORD] == 0.0
    online = online_run("sor")
    assert online.aggregate_ledger().totals[CostCategory.RECORD] == 0.0


def test_record_overhead_well_under_online_detection(tmp_path):
    """The point of the mode: logging synchronization order online costs
    a sliver of what online detection costs (bench_record.py commits the
    measured numbers; this is the coarse invariant)."""
    spec = get_app("water")
    base = spec.run(nprocs=4, detection=False)
    recorded, _, _ = record_and_replay("water", tmp_path)
    online = online_run("water")
    record_over = recorded.runtime_cycles / base.runtime_cycles
    online_over = online.runtime_cycles / base.runtime_cycles
    assert record_over < 1.2
    assert record_over < 1 + (online_over - 1) / 4


def test_record_runs_are_deterministic(tmp_path):
    """Same seed, same trace — byte for byte (the frame hash makes this a
    one-line comparison)."""
    _, _, path_a = record_and_replay("tsp", tmp_path)
    spec = get_app("tsp")
    path_b = str(tmp_path / "tsp_again.trace")
    spec.run(nprocs=4, mode="record", trace_file=path_b)
    with open(path_a) as fa, open(path_b) as fb:
        assert fa.read() == fb.read()


def test_record_forces_detection_off():
    cfg = DsmConfig(nprocs=4, detection=True, mode="record",
                    trace_file="/tmp/unused.trace")
    assert cfg.detection is False


# ---------------------------------------------------------------------- #
# Trace framing: torn and corrupt files fail loudly.
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def sor_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "sor.trace"
    get_app("sor").run(nprocs=4, mode="record", trace_file=str(path))
    return str(path)


def _replay_sor(trace_path):
    return get_app("sor").run(nprocs=4, mode="detect-offline",
                              trace_file=trace_path)


def test_truncated_trace_tail_rejected(sor_trace, tmp_path):
    """A torn record-side write (the file lost its tail) breaks the hash
    frame: replay refuses it instead of steering a different execution."""
    framed = open(sor_trace).read()
    for cut in (1, 5, len(framed) // 2):
        torn = tmp_path / f"torn{cut}.trace"
        torn.write_text(framed[:-cut])
        with pytest.raises(TraceError, match="torn or corrupt"):
            _replay_sor(str(torn))


def test_corrupt_trace_byte_rejected(sor_trace, tmp_path):
    framed = open(sor_trace).read()
    mid = len(framed) // 3
    flipped = framed[:mid] + ("X" if framed[mid] != "X" else "Y") \
        + framed[mid + 1:]
    bad = tmp_path / "flipped.trace"
    bad.write_text(flipped)
    with pytest.raises(TraceError, match="torn or corrupt"):
        _replay_sor(str(bad))


def test_missing_trace_file_rejected(tmp_path):
    with pytest.raises(TraceError, match="cannot read trace file"):
        _replay_sor(str(tmp_path / "nope.trace"))


def test_unsupported_trace_version_rejected(sor_trace, tmp_path):
    trace = load_trace(sor_trace)
    payload = trace.to_payload()
    payload["version"] = 999
    with pytest.raises(TraceError, match="version"):
        SyncTrace.from_payload(payload)


def test_extra_recorded_entries_fail_replay(sor_trace, tmp_path):
    """A well-framed trace whose streams don't match the execution still
    fails loudly: here the replay finishes without consuming a bogus
    trailing delivery, and the enforcer refuses to under-verify."""
    trace = load_trace(sor_trace)
    trace.deliveries.append(("barrier_arrival", 1, 0))
    padded = tmp_path / "padded.trace"
    write_trace(trace, str(padded))  # re-frames, so the hash is valid
    with pytest.raises(ReplayError, match="before consuming"):
        _replay_sor(str(padded))


def test_mutated_delivery_stream_diverges(sor_trace, tmp_path):
    trace = load_trace(sor_trace)
    tag, src, dst = trace.deliveries[10]
    trace.deliveries[10] = (tag, dst, src)
    mutated = tmp_path / "mutated.trace"
    write_trace(trace, str(mutated))
    # The divergence fires inside a simulated process, so the scheduler
    # surfaces it wrapped in a ProcessFailure naming the ReplayError.
    with pytest.raises(ProcessFailure, match="replay diverged"):
        _replay_sor(str(mutated))


# ---------------------------------------------------------------------- #
# Config digest: replaying under a different execution is refused.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("mismatch", [
    dict(seed=1),
    dict(loss_rate=0.05, fault_seed=3),
    dict(page_size_words=32),
])
def test_digest_mismatch_rejected(sor_trace, mismatch):
    with pytest.raises(ConfigError) as exc:
        get_app("sor").run(nprocs=4, mode="detect-offline",
                           trace_file=sor_trace, **mismatch)
    msg = str(exc.value)
    assert "--mode detect-offline" in msg and "--trace-file" in msg


def test_digest_mismatch_wrong_nprocs(sor_trace):
    with pytest.raises(ConfigError, match="nprocs"):
        get_app("sor").run(nprocs=8, mode="detect-offline",
                           trace_file=sor_trace)


def test_digest_mismatch_wrong_app(sor_trace):
    with pytest.raises(ConfigError, match="app"):
        get_app("fft").run(nprocs=4, mode="detect-offline",
                           trace_file=sor_trace)


def test_digest_ignores_detection_side_fields():
    """Record (detection off) and replay (detection on, any engine) must
    agree on the digest, or the header check could never pass."""
    base = dict(nprocs=4, trace_file="/tmp/unused.trace")
    rec = DsmConfig(mode="record", **base)
    rep = DsmConfig(mode="detect-offline", detection=True,
                    sharded_detection=True, first_races_only=True,
                    detector_fast_path=False, **base)
    assert execution_digest(rec, "sor") == execution_digest(rep, "sor")
    # ... while execution-shaping fields do change it:
    other = DsmConfig(mode="record", nprocs=4, seed=1,
                      trace_file="/tmp/unused.trace")
    assert execution_digest(rec, "sor") != execution_digest(other, "sor")
    assert execution_digest(rec, "sor") != execution_digest(rec, "fft")


# ---------------------------------------------------------------------- #
# Config rejections: compositions the modes cannot honor.
# ---------------------------------------------------------------------- #
def test_mode_requires_trace_file():
    for mode in ("record", "detect-offline"):
        with pytest.raises(ConfigError, match="--trace-file"):
            DsmConfig(nprocs=4, mode=mode)


def test_trace_file_requires_two_phase_mode():
    with pytest.raises(ConfigError, match="--mode record"):
        DsmConfig(nprocs=4, trace_file="/tmp/x.trace")


def test_unknown_mode_rejected():
    with pytest.raises(ConfigError, match="--mode"):
        DsmConfig(nprocs=4, mode="offline")


@pytest.mark.parametrize("mode", ["record", "detect-offline"])
def test_mode_refuses_crash_injection(mode):
    with pytest.raises(ConfigError, match="--crash-rate/--crash-at"):
        DsmConfig(nprocs=4, mode=mode, trace_file="/tmp/x.trace",
                  crash_rate=0.01)
    with pytest.raises(ConfigError, match="--crash-rate/--crash-at"):
        DsmConfig(nprocs=4, mode=mode, trace_file="/tmp/x.trace",
                  crash_at=((1, 1),), checkpoint=True)


@pytest.mark.parametrize("mode", ["record", "detect-offline"])
def test_mode_refuses_resume(mode, tmp_path):
    with pytest.raises(ConfigError, match="--resume-from"):
        DsmConfig(nprocs=4, mode=mode, trace_file="/tmp/x.trace",
                  resume_from=str(tmp_path))


def test_config_error_names_both_flags():
    with pytest.raises(ConfigError) as exc:
        DsmConfig(nprocs=4, mode="record", trace_file="/tmp/x.trace",
                  crash_rate=0.01)
    msg = str(exc.value)
    assert "--mode record" in msg and "--crash-rate" in msg


# ---------------------------------------------------------------------- #
# SYNC_TAGS invariant: the recorded stream must be identical with
# detection on and off, or replay could never verify it.
# ---------------------------------------------------------------------- #
def test_sync_tag_stream_identical_with_and_without_detection():
    spec = get_app("tsp")
    on = spec.run(nprocs=4, detection=True)
    off = spec.run(nprocs=4, detection=False)
    for tag in SYNC_TAGS:
        assert (on.traffic.messages_by_tag.get(tag, 0)
                == off.traffic.messages_by_tag.get(tag, 0)), tag
