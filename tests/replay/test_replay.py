"""Record/replay of synchronization order and divergence detection."""

import pytest

from repro.apps.registry import APPLICATIONS
from repro.dsm.cvm import CVM
from repro.errors import ReplayError
from repro.replay import (LockOrderEnforcer, LockOrderRecorder, SyncOrderLog)


def _contended_app(env):
    x = env.malloc(1, name="x")
    env.barrier()
    for _ in range(4):
        with env.locked(1):
            env.store(x, env.load(x) + 1)
    env.barrier()
    return env.load(x)


def record_run(seed, nprocs=4):
    spec = APPLICATIONS["tsp"]
    cfg = spec.config(nprocs=nprocs, policy="random", seed=seed)
    system = CVM(cfg)
    recorder = LockOrderRecorder()
    system.lock_order = recorder
    result = system.run(_contended_app)
    return recorder, result


def test_recorder_logs_every_grant():
    recorder, result = record_run(seed=1)
    assert recorder.log.total_grants() == result.lock_acquires
    assert recorder.log.log_bytes() > 0
    # All grants are for lock 1 and each pid appears 4 times.
    grants = recorder.log.grants[1]
    assert sorted(grants) == sorted([p for p in range(4) for _ in range(4)])


def test_replay_reproduces_grant_order_under_different_seed():
    recorder, _res = record_run(seed=1)
    spec = APPLICATIONS["tsp"]
    cfg2 = spec.config(nprocs=4, policy="random", seed=999)  # different!
    system2 = CVM(cfg2)
    replayer = LockOrderRecorder()  # second recorder to observe the replay
    enforcer = LockOrderEnforcer(recorder.log)

    class Both:
        """Enforce the first run's order while recording the second's."""

        def may_acquire(self, lid, pid):
            return enforcer.may_acquire(lid, pid)

        def expected_next(self, lid):
            return enforcer.expected_next(lid)

        def record_grant(self, lid, pid):
            enforcer.record_grant(lid, pid)
            replayer.record_grant(lid, pid)

    system2.lock_order = Both()
    system2.run(_contended_app)
    assert replayer.log.grants == recorder.log.grants
    assert enforcer.fully_consumed()


def test_enforcer_raises_on_divergence():
    log = SyncOrderLog()
    log.append(7, 0)
    log.append(7, 1)
    enforcer = LockOrderEnforcer(log)
    assert enforcer.may_acquire(7, 0)
    assert not enforcer.may_acquire(7, 1)
    enforcer.record_grant(7, 0)
    with pytest.raises(ReplayError):
        enforcer.record_grant(7, 0)  # recorded next is P1


def test_enforcer_unconstrained_locks_pass_through():
    enforcer = LockOrderEnforcer(SyncOrderLog())
    assert enforcer.may_acquire(3, 2)
    assert enforcer.expected_next(3) is None
    enforcer.record_grant(3, 2)  # no constraint, no error
    assert enforcer.fully_consumed()


def test_log_bytes_accounting():
    log = SyncOrderLog()
    for pid in (0, 1, 0, 2):
        log.append(5, pid)
    log.append(6, 1)
    assert log.total_grants() == 5
    assert log.log_bytes() == 4 * 5 + 8 * 2
