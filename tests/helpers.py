"""Importable helpers shared by test modules (fixtures live in conftest)."""

from __future__ import annotations

from repro.dsm.config import DsmConfig
from repro.dsm.cvm import CVM


def small_config(**overrides) -> DsmConfig:
    """A small, fast configuration used across tests: tiny pages so page
    behaviour (faults, false sharing) is easy to provoke."""
    base = dict(nprocs=4, page_size_words=16, segment_words=4096,
                detection=True)
    base.update(overrides)
    return DsmConfig(**base)


def run_app(app, *args, **config_overrides):
    """Run an SPMD function on a fresh CVM with a small config."""
    cfg = small_config(**config_overrides)
    return CVM(cfg).run(app, *args)


def run_app_with_system(app, *args, **config_overrides):
    """Like run_app, but also returns the CVM instance (for inspecting
    stores, segments, vc logs...)."""
    cfg = small_config(**config_overrides)
    system = CVM(cfg)
    return system, system.run(app, *args)


def online_race_keys(result):
    """Canonical (kind, addr, sides) keys from a RunResult, comparable to
    the oracle detectors' output."""
    return {
        (r.kind.value, r.addr,
         tuple(sorted([(r.a.pid, r.a.index, r.a.access),
                       (r.b.pid, r.b.index, r.b.access)])))
        for r in result.races
    }
